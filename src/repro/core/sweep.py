"""The shared block-sweep driver behind every simulated engine.

Before this module, each of ``engine1d``/``engine2d``/``engine3d``
carried its own copy of the same orchestration: validate the padded
input, round the requested thread-block to warp-tile multiples, size a
shared-memory staging tile, copy global -> shared (``cp.async`` when
enabled), loop warp tiles over the block, trim the grid-overhanging
edge tiles, and book the hardware events into one
:class:`~repro.tcu.counters.EventCounters` span.  That orchestration now
lives here once; an engine shrinks to a *tile provider* — a callable
computing one warp tile from shared memory — plus a
:class:`SweepSpec` describing its geometry:

* 2D sweeps pass their interior/tile/block shapes directly;
* 1D sweeps run as a ``1 x n`` sweep whose provider returns the 64
  outputs of the 8x8 accumulator as a flat ``(1, 64)`` row;
* 3D sweeps keep their plane decomposition and dispatch per-plane 2D
  sweeps (plus CUDA-core point-wise planes) — see
  :class:`~repro.core.engine3d.LoRAStencil3D`.

The driver reproduces the exact memory traffic of the engines it
replaced — same block rounding, same shared-tile shapes, same clamped
fills — so event counts are bit-for-bit stable across the refactor
(the schedule-equivalence suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ShapeError
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.telemetry.health import current_beat
from repro.telemetry.spans import TRACER

__all__ = ["SweepSpec", "run_block_sweep", "validate_padded"]

#: A tile provider: ``(warp, smem, row, col) -> out_tile`` where ``(row,
#: col)`` is the tile's block-local input-window origin and the returned
#: array has the spec's tile shape.
TileProvider = Callable[..., np.ndarray]


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to


@dataclass(frozen=True)
class SweepSpec:
    """Geometry and labels of one block sweep (a 2D view of the grid).

    ``interior``/``tile``/``block`` are ``(rows, cols)`` shapes of the
    output, one warp tile, and the *requested* thread block (rounded up
    to tile multiples by the driver, clamped to the rounded interior).
    ``smem_halo`` is the extra shared rows/cols a block stages beyond
    its output shape (the input-window overhang).  ``ndim`` and
    ``shape_label`` only annotate the telemetry span — a 1D sweep runs
    as a ``1 x n`` spec but still reports ``ndim=1``.
    """

    interior: tuple[int, int]
    tile: tuple[int, int]
    block: tuple[int, int]
    smem_halo: tuple[int, int]
    use_async_copy: bool
    ndim: int
    shape_label: str

    def blocked(self) -> tuple[int, int]:
        """The effective block shape after tile rounding and clamping."""
        rows, cols = self.interior
        t_r, t_c = self.tile
        block_r = min(
            _round_up(rows, t_r), _round_up(max(self.block[0], t_r), t_r)
        )
        block_c = min(
            _round_up(cols, t_c), _round_up(max(self.block[1], t_c), t_c)
        )
        return block_r, block_c

    def smem_shape(self) -> tuple[int, int]:
        """Shared staging tile: the effective block plus its halo."""
        block_r, block_c = self.blocked()
        return block_r + self.smem_halo[0], block_c + self.smem_halo[1]


def validate_padded(
    padded: np.ndarray, ndim: int, radius: int
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Check the pad convention; returns ``(float64 array, interior)``.

    Raises :class:`~repro.errors.ShapeError` when the dimensionality is
    wrong or the array is too small to contain one interior point after
    removing the ``radius`` halo — the validation every engine used to
    duplicate.
    """
    padded = np.asarray(padded, dtype=np.float64)
    if padded.ndim != ndim:
        raise ShapeError(f"expected {ndim}D input, got {padded.ndim}D")
    interior = tuple(s - 2 * radius for s in padded.shape)
    if min(interior) <= 0:
        raise ShapeError(
            f"padded input {padded.shape} too small for radius {radius}"
        )
    return padded, interior


def run_block_sweep(
    padded2d: np.ndarray,
    spec: SweepSpec,
    compute_tile: TileProvider,
    device: Device | None = None,
    profiler=None,
    guard=None,
    vector=None,
) -> tuple[np.ndarray, EventCounters]:
    """Sweep one grid block by block; returns ``(interior, counters)``.

    ``padded2d`` is the padded input viewed as 2D (1D engines reshape to
    ``(1, n)``); ``compute_tile(warp, smem, row, col)`` computes one
    warp tile from the block's shared staging tile.  The driver owns
    everything else: global arrays, block rounding, the shared fill
    (clamped at the grid edge; shared memory is zero-initialized so
    out-of-range reads contribute through zero weights only), the tile
    loop with edge trimming, and the ``tcu.sweep`` telemetry span whose
    events are the sweep's own.

    ``profiler`` (a :class:`repro.telemetry.perf.InstrProfiler`) only
    receives the sweep's geometry and event total here
    (``note_sweep``); per-instruction attribution happens inside the
    tile provider, which closes over the same profiler.

    Fault tolerance rides on two optional hooks: a fault injector
    attached to the device (``Device(injector=...)``) is offered every
    staging copy (``on_stage``; warp-level MMA injection happens inside
    the tile provider's ``mma_sync`` calls), and ``guard`` (a
    :class:`repro.faults.abft.SweepGuard`) scrubs each staged block
    against its DRAM source and ABFT-verifies each computed tile,
    recovering per its policy.  Both default to ``None`` and cost one
    ``is not None`` check each on the unguarded path.

    ``vector`` (a :class:`~repro.core.vectorize.VectorProgram`) switches
    the sweep to the vectorized backend: all tiles at once, bit-identical
    numerics and counters, no per-tile hooks — so it refuses to combine
    with ``guard`` or a device-attached fault injector.
    """
    beat = current_beat()
    n_tiles = (
        -(-spec.interior[0] // spec.tile[0])
        * -(-spec.interior[1] // spec.tile[1])
    )
    if vector is not None:
        from repro.core.vectorize import run_vector_sweep

        if guard is not None:
            from repro.errors import BackendError

            raise BackendError(
                "the vectorized backend does not support ABFT sweep "
                "guards; use backend='interpreter'"
            )
        out = run_vector_sweep(
            padded2d, spec, vector, device=device, profiler=profiler
        )
        if beat is not None:
            beat(n_tiles, n_tiles)  # one-shot: all tiles at once
        return out
    device = device or Device()
    injector = getattr(device, "injector", None)
    start = device.snapshot()
    warp = device.warp()
    rows, cols = spec.interior
    t_r, t_c = spec.tile
    block_r, block_c = spec.blocked()
    smem_shape = spec.smem_shape()

    gmem_in = device.global_array(padded2d, name="input")
    gmem_out = device.global_array(
        np.zeros((rows, cols), dtype=np.float64), name="output"
    )

    if beat is not None:
        beat(0, n_tiles)
    with TRACER.span(
        "tcu.sweep", category="tcu", ndim=spec.ndim, shape=spec.shape_label
    ) as span:
        for br in range(0, rows, block_r):
            for bc in range(0, cols, block_c):
                smem = device.shared(smem_shape, name="block")
                avail_r = min(smem_shape[0], padded2d.shape[0] - br)
                avail_c = min(smem_shape[1], padded2d.shape[1] - bc)
                if avail_r > 0 and avail_c > 0:
                    stage_site = (
                        injector.stage_site() if injector is not None else None
                    )

                    def _stage(
                        smem=smem,
                        br=br,
                        bc=bc,
                        ar=avail_r,
                        ac=avail_c,
                        site=stage_site,
                    ):
                        gmem_in.copy_to_shared(
                            (slice(br, br + ar), slice(bc, bc + ac)),
                            smem,
                            0,
                            0,
                            use_async=spec.use_async_copy,
                        )
                        if injector is not None:
                            injector.on_stage(smem, ar, ac, site=site)

                    _stage()
                    if guard is not None:
                        guard.check_stage(
                            smem, padded2d, br, bc, avail_r, avail_c, _stage
                        )
                r_lim = min(block_r, rows - br)
                c_lim = min(block_c, cols - bc)
                for tr in range(0, r_lim, t_r):
                    for tc in range(0, c_lim, t_c):
                        mark = (
                            injector.mma_mark()
                            if injector is not None
                            else None
                        )
                        out_tile = compute_tile(warp, smem, tr, tc)
                        if guard is not None:
                            out_tile = guard.check_tile(
                                out_tile,
                                compute_tile,
                                warp,
                                smem,
                                tr,
                                tc,
                                mma_mark=mark,
                            )
                        vr = min(t_r, rows - (br + tr))
                        vc = min(t_c, cols - (bc + tc))
                        gmem_out.write(
                            (
                                slice(br + tr, br + tr + vr),
                                slice(bc + tc, bc + tc + vc),
                            ),
                            out_tile[:vr, :vc],
                        )
                if beat is not None:
                    # one heartbeat per block: the monitored cadence
                    beat(-(-r_lim // t_r) * -(-c_lim // t_c))
        events = device.events_since(start)
        span.add_events(events)
    if profiler is not None:
        profiler.note_sweep(spec, events)
    return gmem_out.data, events
