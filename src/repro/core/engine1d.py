"""LoRAStencil 1D executor.

1D stencils have no residual dimension (Section IV-C): a single matrix
multiplication gathers all dependencies, so there is no MCM, no BVS, and
no pyramid — just the banded weight matrix ``U`` applied to a window
matrix whose columns are 8-strided segments of the input.

Both paths use the repository-wide convention: input is padded by the
stencil radius, output is the interior.  Callers holding *unpadded*
arrays should prefer ``repro.compile(...)`` and
:meth:`~repro.runtime.facade.CompiledStencil.apply_grid`, which pads
internally through :mod:`repro.stencil.boundary`.

Direct construction is deprecated: ``repro.compile(weights, ndim=1)``
builds (and caches) the same engine inside a
:class:`~repro.runtime.plan.StencilPlan`.

Tile layout: one warp updates 64 consecutive outputs arranged as an 8x8
accumulator with ``out_tile[p, q] = out[base + 8q + p]``.  The window
``X[r, q] = x[base + 8q + r]`` is read from the block's flat shared
buffer with strided fragment loads, and ``out_tile = U @ X`` accumulates
over the ``K/4`` k-blocks.
"""

from __future__ import annotations

import numpy as np

from repro.core._deprecation import warn_engine_deprecation
from repro.core.config import OptimizationConfig
from repro.core.uvbuild import build_u_matrix
from repro.errors import ShapeError
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.telemetry.spans import TRACER

__all__ = ["LoRAStencil1D", "DEFAULT_BLOCK_1D"]

#: Paper Table II blocking for the 1D kernels (outputs per block).
DEFAULT_BLOCK_1D = 1024

_TILE = 64  # outputs per warp-tile (8x8 accumulator)


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to


class LoRAStencil1D:
    """Tensorized executor for one 1D stencil kernel."""

    def __init__(
        self,
        weights: StencilWeights | np.ndarray,
        config: OptimizationConfig | None = None,
    ) -> None:
        warn_engine_deprecation("direct LoRAStencil1D(...) construction")
        if isinstance(weights, StencilWeights):
            if weights.ndim != 1:
                raise ShapeError(
                    f"LoRAStencil1D requires 1D weights, got {weights.ndim}D"
                )
            w = weights.as_vector()
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.ndim != 1 or w.shape[0] % 2 != 1:
                raise ShapeError(
                    f"weight vector must have odd length, got shape {w.shape}"
                )
        self.weight_vector = w
        self.radius = (w.shape[0] - 1) // 2
        self.config = config or OptimizationConfig()

        h = self.radius
        #: window rows (k-dimension), 4-aligned
        self.k_rows = _round_up(8 + 2 * h, 4)
        u_mat = build_u_matrix(w, 8, self.k_rows, offset=0)
        self._u_mat = u_mat
        self._u_frags = [
            Fragment.from_matrix(FragmentKind.A, u_mat[:, 4 * k : 4 * k + 4])
            for k in range(self.k_rows // 4)
        ]

    @property
    def mma_per_tile(self) -> int:
        """MMA instructions per 64 outputs."""
        return self.k_rows // 4

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Apply the stencil to a padded 1D array; returns the interior."""
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 1:
            raise ShapeError(f"expected 1D input, got {padded.ndim}D")
        n = padded.shape[0] - 2 * self.radius
        if n <= 0:
            raise ShapeError(
                f"padded input of {padded.shape[0]} too small for radius "
                f"{self.radius}"
            )
        out = np.zeros(n, dtype=np.float64)
        for t, wt in enumerate(self.weight_vector):
            out += wt * padded[t : t + n]
        return out

    # ------------------------------------------------------------------
    # simulated path
    # ------------------------------------------------------------------
    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block: int = DEFAULT_BLOCK_1D,
    ) -> tuple[np.ndarray, EventCounters]:
        """Warp-level execution; returns ``(interior, counters)``."""
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 1:
            raise ShapeError(f"expected 1D input, got {padded.ndim}D")
        n = padded.shape[0] - 2 * self.radius
        if n <= 0:
            raise ShapeError(
                f"padded input of {padded.shape[0]} too small for radius "
                f"{self.radius}"
            )
        device = device or Device()
        start = device.snapshot()
        warp = device.warp()
        gmem_in = device.global_array(padded.reshape(1, -1), name="input")
        gmem_out = device.global_array(np.zeros((1, n)), name="output")

        block = max(_TILE, _round_up(min(block, n), _TILE))
        # last tile of the block reads up to block - 64 + 8*7 + k_rows
        buf_len = block + self.k_rows - 8 + _TILE - 8

        with TRACER.span(
            "tcu.sweep", category="tcu", ndim=1, shape=str(n)
        ) as span:
            for b0 in range(0, n, block):
                smem = device.shared((1, buf_len), name="block")
                avail = min(buf_len, padded.shape[0] - b0)
                gmem_in.copy_to_shared(
                    (slice(0, 1), slice(b0, b0 + avail)),
                    smem,
                    0,
                    0,
                    use_async=self.config.use_async_copy,
                )
                lim = min(block, n - b0)
                for t0 in range(0, lim, _TILE):
                    tile = self._compute_tile(warp, smem, t0)
                    valid = min(_TILE, n - (b0 + t0))
                    flat = tile.T.reshape(-1)[:valid]  # out[base + 8q + p]
                    gmem_out.write(
                        (slice(0, 1), slice(b0 + t0, b0 + t0 + valid)),
                        flat.reshape(1, -1),
                    )
            events = device.events_since(start)
            span.add_events(events)
        return gmem_out.data.reshape(-1), events

    def _compute_tile(self, warp, smem, local_base: int) -> np.ndarray:
        """One 8x8 accumulator covering 64 consecutive outputs."""
        if not self.config.use_tensor_cores:
            window = np.empty((self.k_rows, 8), dtype=np.float64)
            for kb in range(self.k_rows // 4):
                window[4 * kb : 4 * kb + 4, :] = smem.read_fragment_strided(
                    local_base + 4 * kb, (4, 8), col_stride=8
                )
            warp.counters.cuda_core_flops += 2 * 8 * self.k_rows * 8
            return self._u_mat @ window
        acc = None
        for kb in range(self.k_rows // 4):
            x_tile = smem.read_fragment_strided(
                local_base + 4 * kb, (4, 8), col_stride=8
            )
            x_frag = Fragment.from_matrix(FragmentKind.B, x_tile)
            acc = warp.mma_sync(self._u_frags[kb], x_frag, acc)
        return acc.to_matrix()
