"""LoRAStencil 1D executor.

1D stencils have no residual dimension (Section IV-C): a single matrix
multiplication gathers all dependencies, so there is no MCM, no BVS, and
no pyramid — just the banded weight matrix ``U`` applied to a window
matrix whose columns are 8-strided segments of the input.  The
simulated path interprets the engine's lowered 1D tile program
(:func:`repro.tcu.program.build_tile_program_1d`) through the shared
block-sweep driver (:mod:`repro.core.sweep`), which treats the sweep as
a ``1 x n`` grid of ``(1, 64)`` output tiles; the eager accumulator
chain survives as the ``oracle=True`` path.

Both paths use the repository-wide convention: input is padded by the
stencil radius, output is the interior.  Callers holding *unpadded*
arrays should prefer ``repro.compile(...)`` and
:meth:`~repro.runtime.facade.CompiledStencil.apply_grid`, which pads
internally through :mod:`repro.stencil.boundary`.

Direct construction is deprecated: ``repro.compile(weights, ndim=1)``
builds (and caches) the same engine inside a
:class:`~repro.runtime.plan.StencilPlan`.

Tile layout: one warp updates 64 consecutive outputs arranged as an 8x8
accumulator with ``out_tile[p, q] = out[base + 8q + p]``.  The window
``X[r, q] = x[base + 8q + r]`` is read from the block's flat shared
buffer with strided fragment loads, and ``out_tile = U @ X`` accumulates
over the ``K/4`` k-blocks.
"""

from __future__ import annotations

import numpy as np

from repro.core._deprecation import warn_engine_deprecation
from repro.core.config import OptimizationConfig
from repro.core.sweep import SweepSpec, run_block_sweep
from repro.core.uvbuild import build_u_matrix
from repro.errors import PerfError, ShapeError
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.tcu.program import execute_program_1d

__all__ = ["LoRAStencil1D", "DEFAULT_BLOCK_1D"]

#: Paper Table II blocking for the 1D kernels (outputs per block).
DEFAULT_BLOCK_1D = 1024

_TILE = 64  # outputs per warp-tile (8x8 accumulator)


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to


class LoRAStencil1D:
    """Tensorized executor for one 1D stencil kernel."""

    def __init__(
        self,
        weights: StencilWeights | np.ndarray,
        config: OptimizationConfig | None = None,
    ) -> None:
        warn_engine_deprecation("direct LoRAStencil1D(...) construction")
        if isinstance(weights, StencilWeights):
            if weights.ndim != 1:
                raise ShapeError(
                    f"LoRAStencil1D requires 1D weights, got {weights.ndim}D"
                )
            w = weights.as_vector()
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.ndim != 1 or w.shape[0] % 2 != 1:
                raise ShapeError(
                    f"weight vector must have odd length, got shape {w.shape}"
                )
        self.weight_vector = w
        self.radius = (w.shape[0] - 1) // 2
        self.config = config or OptimizationConfig()

        h = self.radius
        #: window rows (k-dimension), 4-aligned
        self.k_rows = _round_up(8 + 2 * h, 4)
        u_mat = build_u_matrix(w, 8, self.k_rows, offset=0)
        self._u_mat = u_mat
        self._u_frags = [
            Fragment.from_matrix(FragmentKind.A, u_mat[:, 4 * k : 4 * k + 4])
            for k in range(self.k_rows // 4)
        ]
        self._lowered = None

    @property
    def mma_per_tile(self) -> int:
        """MMA instructions per 64 outputs."""
        return self.k_rows // 4

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    @property
    def lowered(self):
        """The scheduled 1D tile program this engine executes.

        A :class:`~repro.core.lowering.LoweredTile` bound by the plan's
        lowering pipeline (or built lazily for directly constructed
        engines); ``None`` for CUDA-core configurations.
        """
        if self._lowered is None and self.config.use_tensor_cores:
            from repro.core.lowering import lower_engine

            self._lowered = lower_engine(self)
        return self._lowered

    def bind_lowered(self, lowered) -> None:
        """Attach a pipeline-produced lowered program to this engine."""
        self._lowered = lowered

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Apply the stencil to a padded 1D array; returns the interior."""
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 1:
            raise ShapeError(f"expected 1D input, got {padded.ndim}D")
        n = padded.shape[0] - 2 * self.radius
        if n <= 0:
            raise ShapeError(
                f"padded input of {padded.shape[0]} too small for radius "
                f"{self.radius}"
            )
        out = np.zeros(n, dtype=np.float64)
        for t, wt in enumerate(self.weight_vector):
            out += wt * padded[t : t + n]
        return out

    # ------------------------------------------------------------------
    # simulated path
    # ------------------------------------------------------------------
    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block: int = DEFAULT_BLOCK_1D,
        oracle: bool = False,
        profiler=None,
        verify=None,
        policy=None,
        report=None,
        backend: str | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Warp-level execution; returns ``(interior, counters)``.

        Sweeps through the shared block-sweep driver as a ``1 x n``
        grid; ``backend`` selects the execution backend, with the legacy
        ``oracle=True`` flag equivalent to ``backend="oracle"`` (the
        eager accumulator chain instead of the lowered program).  The
        vectorized backend computes every tile at once, bit-identically,
        but rejects ``verify``/``policy``/``report`` with a typed
        :class:`~repro.errors.BackendError`.  ``verify="abft"``
        checksum-verifies tiles/stagings with recovery bounded by
        ``policy``, counting into ``report`` (see :mod:`repro.faults`).
        """
        from repro.runtime.backends import engine_backend

        backend = engine_backend(backend, oracle)
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 1:
            raise ShapeError(f"expected 1D input, got {padded.ndim}D")
        n = padded.shape[0] - 2 * self.radius
        if n <= 0:
            raise ShapeError(
                f"padded input of {padded.shape[0]} too small for radius "
                f"{self.radius}"
            )
        # last tile of a block reads up to block - 64 + 8*7 + k_rows
        spec = SweepSpec(
            interior=(1, n),
            tile=(1, _TILE),
            block=(1, block),
            smem_halo=(0, self.k_rows - 8 + _TILE - 8),
            use_async_copy=self.config.use_async_copy,
            ndim=1,
            shape_label=str(n),
        )
        if backend == "vectorized":
            if verify or policy is not None or report is not None:
                from repro.errors import BackendError

                raise BackendError(
                    "the vectorized backend does not support ABFT "
                    "verification or fault recovery; use "
                    "backend='interpreter'"
                )
            lowered = self.lowered
            vector = lowered.vector if lowered is not None else None
            if vector is not None:
                out, events = run_block_sweep(
                    padded.reshape(1, -1),
                    spec,
                    None,
                    device=device,
                    profiler=profiler,
                    vector=vector,
                )
                return out.reshape(-1), events
            backend = "interpreter"  # CUDA-core config: nothing to batch
        guard = None
        if verify:
            from repro.faults.abft import make_guard

            guard = make_guard(
                self, verify, policy=policy, report=report, label="1d"
            )
        out, events = run_block_sweep(
            padded.reshape(1, -1),
            spec,
            self.tile_source(oracle=backend == "oracle", profiler=profiler),
            device=device,
            profiler=profiler,
            guard=guard,
        )
        return out.reshape(-1), events

    def tile_source(self, oracle: bool = False, profiler=None):
        """The tile provider the sweep driver executes.

        Returns a callable computing the 64 outputs at block-local
        offset ``col`` as a flat ``(1, 64)`` row (``out[base + 8q + p] =
        acc[p, q]``), interpreting the lowered program unless
        ``oracle=True`` or the config targets CUDA cores.  ``profiler``
        opts into per-instruction attribution (lowered path only).
        """
        lowered = None if oracle else self.lowered
        if lowered is None and profiler is not None:
            raise PerfError(
                "per-instruction profiling requires the lowered "
                "tensor-core program (no oracle/CUDA-core path)"
            )

        def _compute(warp, smem, row, col):
            if lowered is not None:
                acc = execute_program_1d(
                    lowered.program, warp, smem, col, profiler
                )
            else:
                acc = self._compute_tile(warp, smem, col)
            return acc.T.reshape(1, -1)

        return _compute

    def _compute_tile(self, warp, smem, local_base: int) -> np.ndarray:
        """One 8x8 accumulator covering 64 consecutive outputs (eager)."""
        if not self.config.use_tensor_cores:
            window = np.empty((self.k_rows, 8), dtype=np.float64)
            for kb in range(self.k_rows // 4):
                window[4 * kb : 4 * kb + 4, :] = smem.read_fragment_strided(
                    local_base + 4 * kb, (4, 8), col_stride=8
                )
            warp.counters.cuda_core_flops += 2 * 8 * self.k_rows * 8
            return self._u_mat @ window
        acc = None
        for kb in range(self.k_rows // 4):
            x_tile = smem.read_fragment_strided(
                local_base + 4 * kb, (4, 8), col_stride=8
            )
            x_frag = Fragment.from_matrix(FragmentKind.B, x_tile)
            acc = warp.mma_sync(self._u_frags[kb], x_frag, acc)
        return acc.to_matrix()
