"""The vectorized execution backend: batched NumPy over whole sweeps.

The per-thread interpreter (:func:`repro.tcu.program.execute_program`)
steps one warp tile at a time, fragment by fragment — the reference
semantics, and ~1s for a single 256x256 Box-2D9P sweep.  This module
compiles the *same scheduled* :class:`~repro.tcu.program.TileProgram`
into broadcast ``np.matmul`` over **all tiles of the sweep at once**:

* the banded U/V operands are materialized once per plan from the
  engine's fragments (``Fragment.from_matrix``/``to_matrix`` is an exact
  permutation gather, so matrix-domain math is bit-identical to
  fragment-domain math);
* every tile's input window is gathered into one ``(n_tiles, k_rows,
  w_cols)`` batch via ``sliding_window_view`` over a zero-extended copy
  of the padded grid (shared memory is zero-initialized and clamp-filled,
  so the windows match the staged blocks exactly, including edge tiles);
* the instruction walk follows the plan's *scheduled* order, so every
  registered schedule runs identically on both backends;
* broadcast ``np.matmul`` with an elementwise accumulator add is
  bit-identical to the interpreter's per-tile 2D ``@`` (``einsum`` is
  **not**, and is deliberately not used).

EventCounters are *derived*, not measured: the per-tile program cost is
probed by interpreting the program once against a scratch shared tile
(counter deltas are value-independent — bank conflicts depend only on
addresses, shuffle groups only on ownership maps — and shift-invariant
across tile origins), then scaled by the tile count; staging and DRAM
traffic is priced block-for-block with the driver's arithmetic.  The
result matches the interpreter **bit-for-bit**, which the
schedule-equivalence property suite pins.

Fault injection and ABFT verification hook the per-thread execution the
vectorized path skips, so :func:`run_vector_sweep` refuses devices with
an attached injector; engines reject ``verify=`` up front with a typed
:class:`~repro.errors.BackendError`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.rdg import RDGTileCompute
from repro.errors import BackendError
from repro.tcu.counters import EventCounters
from repro.tcu.memory import SharedMemory
from repro.tcu.program import (
    TileProgram,
    execute_program,
    execute_program_1d,
)
from repro.tcu.warp import Warp
from repro.telemetry.spans import TRACER

__all__ = ["VectorProgram", "build_vector_program", "run_vector_sweep"]

_FP64_BYTES = 8
_STORE_LANES = 32

#: max flat offset a 1D tile reads past its base, plus one
#: (k-block kb, element (r, q) -> base + 4*kb + 8*q + r)
_1D_TAIL = 56


class _ProbeRecorder:
    """Collects per-instruction counter deltas from one probe tile."""

    __slots__ = ("deltas",)

    def __init__(self) -> None:
        self.deltas: list[EventCounters] = []

    def record(self, ins, ns: int, delta: EventCounters) -> None:
        self.deltas.append(delta)


@dataclass
class VectorProgram:
    """A scheduled tile program with batched operands, ready to sweep.

    Built once per plan by :func:`build_vector_program` (the lowering
    pipeline's ``vectorize`` pass); holds dense matrix-domain copies of
    the fragment operands the interpreter indexes per tile, plus a lazy
    per-``smem_shape`` probe cache of the program's exact per-tile
    event cost.
    """

    program: TileProgram
    kind: str  # "2d" | "1d"
    #: 2D: (term, rb, kb) -> (8, 4) banded-U block
    u_ops: dict = field(repr=False)
    #: 2D: (term, wb, ob, half) -> (4, 8) banded-V block (half 0 = "lo")
    v_ops: dict = field(repr=False)
    #: scalar apex weights, indexed by the apex instruction's ``scalar``
    scalar_weights: tuple = ()
    _probe_cache: dict = field(default_factory=dict, repr=False)

    # -- per-tile event cost ------------------------------------------------
    def probe(
        self, smem_shape: tuple[int, int]
    ) -> tuple[tuple[EventCounters, ...], EventCounters]:
        """Interpret the program once on a scratch shared tile.

        Returns ``(per-instruction deltas in schedule order, per-tile
        total)``.  Counter deltas are value-independent and invariant
        under the tile-origin address shift, so one probe per shared
        shape prices every tile of every block exactly.
        """
        cached = self._probe_cache.get(smem_shape)
        if cached is None:
            counters = EventCounters()
            warp = Warp(counters)
            smem = SharedMemory(smem_shape, counters, name="probe")
            recorder = _ProbeRecorder()
            if self.kind == "1d":
                execute_program_1d(self.program, warp, smem, 0, recorder)
            else:
                execute_program(self.program, warp, smem, 0, 0, recorder)
            cached = (tuple(recorder.deltas), counters.snapshot())
            self._probe_cache[smem_shape] = cached
        return cached

    # -- batched instruction walks ------------------------------------------
    def execute_batch_2d(
        self, x: np.ndarray, n_tiles: int, profiler=None, deltas=None
    ) -> np.ndarray:
        """Run the scheduled program over ``x`` = (n_tiles, k_rows,
        w_cols) input windows; returns (n_tiles, out_rows, out_cols)."""
        tile = self.program.tile
        use_bvs = tile.config.use_bvs
        radius = tile.radius
        t_r, t_c = tile.out_rows, tile.out_cols
        env: dict[str, np.ndarray] = {}
        out_final: dict[tuple[int, int], np.ndarray] = {}
        out = np.zeros((x.shape[0], t_r, t_c), dtype=np.float64)

        def step(ins) -> None:
            if ins.op == "load_x":
                kb, wb = ins.meta["kb"], ins.meta["wb"]
                env[ins.dst[0]] = np.ascontiguousarray(
                    x[:, 4 * kb : 4 * kb + 4, 8 * wb : 8 * wb + 8]
                )
            elif ins.op == "mma":
                ti, rb, kb = ins.meta["term"], ins.meta["rb"], ins.meta["kb"]
                d = np.matmul(self.u_ops[(ti, rb, kb)], env[ins.srcs[0]])
                if len(ins.srcs) > 1:
                    d = d + env[ins.srcs[1]]
                env[ins.dst[0]] = d
            elif ins.op == "split":
                t = env[ins.srcs[0]]
                if use_bvs:
                    even = np.ascontiguousarray(t[:, :, 0::2])
                    odd = np.ascontiguousarray(t[:, :, 1::2])
                else:
                    even = np.ascontiguousarray(t[:, :, 0:4])
                    odd = np.ascontiguousarray(t[:, :, 4:8])
                env[ins.dst[0]], env[ins.dst[1]] = even, odd
            elif ins.op == "mma2":
                ti, wb, ob = ins.meta["term"], ins.meta["wb"], ins.meta["ob"]
                half = 0 if ins.meta["half"] == "lo" else 1
                d = np.matmul(env[ins.srcs[0]], self.v_ops[(ti, wb, ob, half)])
                if len(ins.srcs) > 1:
                    d = d + env[ins.srcs[1]]
                env[ins.dst[0]] = d
                out_final[(ins.meta["rb"], ob)] = d
            elif ins.op == "apex":
                # replicate the interpreter exactly: (re)assign every
                # output block, then add the scalar apex term over the
                # whole tile
                for (rb, ob), acc in out_final.items():
                    out[:, 8 * rb : 8 * rb + 8, 8 * ob : 8 * ob + 8] = acc
                w = self.scalar_weights[ins.meta["scalar"]]
                out[:] += w * x[
                    :, radius : radius + t_r, radius : radius + t_c
                ]
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown op {ins.op!r}")

        self._walk(step, n_tiles, profiler, deltas)

        if not self.scalar_weights:
            for (rb, ob), acc in out_final.items():
                out[:, 8 * rb : 8 * rb + 8, 8 * ob : 8 * ob + 8] = acc
        return out

    def execute_batch_1d(
        self,
        ext: np.ndarray,
        bases: np.ndarray,
        n_tiles: int,
        profiler=None,
        deltas=None,
    ) -> np.ndarray:
        """Run the scheduled 1D program over all tiles of a flat sweep;
        returns the (n_tiles, 8, 8) accumulator batch."""
        env: dict[str, np.ndarray] = {}
        result: np.ndarray | None = None
        rows = np.arange(4)[:, None]
        cols = 8 * np.arange(8)[None, :]

        def step(ins) -> None:
            nonlocal result
            if ins.op == "load_x":
                kb = ins.meta["kb"]
                idx = bases[:, None, None] + 4 * kb + rows + cols
                env[ins.dst[0]] = ext[idx]
            elif ins.op == "mma":
                d = np.matmul(self.u_ops[ins.meta["kb"]], env[ins.srcs[0]])
                if len(ins.srcs) > 1:
                    d = d + env[ins.srcs[1]]
                env[ins.dst[0]] = d
                if ins.meta.get("final"):
                    result = d
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown 1D op {ins.op!r}")

        self._walk(step, n_tiles, profiler, deltas)
        if result is None:
            raise ValueError("1D program has no final mma instruction")
        return result

    def _walk(self, step, n_tiles: int, profiler, deltas) -> None:
        """Step the scheduled instruction list, one batched op each.

        With a profiler, each instruction is charged its wall-time and
        its probed per-tile event delta scaled by the tile count —
        integer scaling is exact, so per-term/per-op attribution sums to
        the interpreter's totals bit-for-bit (at one record per batched
        instruction instead of one per tile).
        """
        instrs = self.program.instrs
        if profiler is None:
            for ins in instrs:
                step(ins)
            return
        for ins, delta in zip(instrs, deltas):
            t0 = time.perf_counter_ns()
            step(ins)
            profiler.record(
                ins,
                time.perf_counter_ns() - t0,
                delta.scaled(n_tiles),
                count=n_tiles,
            )


def build_vector_program(program: TileProgram) -> VectorProgram:
    """Materialize the batched operands of a scheduled program."""
    tile = program.tile
    if isinstance(tile, RDGTileCompute):
        u_ops = {}
        v_ops = {}
        for ti, rows in enumerate(tile._u_frags):
            for rb, blocks in enumerate(rows):
                for kb, frag in enumerate(blocks):
                    u_ops[(ti, rb, kb)] = frag.to_matrix()
        for ti, wbs in enumerate(tile._v_frags):
            for wb, obs in enumerate(wbs):
                for ob, halves in enumerate(obs):
                    for half, frag in enumerate(halves):
                        v_ops[(ti, wb, ob, half)] = frag.to_matrix()
        scalars = tuple(
            term.scalar_weight for term in tile.decomposition.scalar_terms
        )
        return VectorProgram(
            program=program,
            kind="2d",
            u_ops=u_ops,
            v_ops=v_ops,
            scalar_weights=scalars,
        )
    # 1D engines: one banded-U fragment per k-block
    u_ops = {kb: frag.to_matrix() for kb, frag in enumerate(tile._u_frags)}
    return VectorProgram(program=program, kind="1d", u_ops=u_ops, v_ops={})


# ---------------------------------------------------------------------------
# the batched sweep driver
# ---------------------------------------------------------------------------
def run_vector_sweep(
    padded2d: np.ndarray,
    spec,
    vector: VectorProgram,
    device=None,
    profiler=None,
) -> tuple[np.ndarray, EventCounters]:
    """Sweep one grid with the vectorized backend.

    Mirrors :func:`repro.core.sweep.run_block_sweep` — same spec, same
    return convention, same ``tcu.sweep`` telemetry span — but computes
    every tile of the sweep in one batched instruction walk and prices
    the driver's staging/DRAM traffic analytically, block for block.
    """
    from repro.tcu.device import Device

    device = device or Device()
    if getattr(device, "injector", None) is not None:
        raise BackendError(
            "the vectorized backend does not support fault injection; "
            "use backend='interpreter'"
        )
    start = device.snapshot()
    counters = device.counters
    rows, cols = spec.interior
    t_r, t_c = spec.tile
    block_r, block_c = spec.blocked()
    smem_shape = spec.smem_shape()
    device.peak_shared_bytes = max(
        device.peak_shared_bytes,
        smem_shape[0] * smem_shape[1] * _FP64_BYTES,
    )

    with TRACER.span(
        "tcu.sweep", category="tcu", ndim=spec.ndim, shape=spec.shape_label
    ) as span:
        # -- staging traffic, priced block-for-block ------------------------
        for br in range(0, rows, block_r):
            for bc in range(0, cols, block_c):
                avail_r = min(smem_shape[0], padded2d.shape[0] - br)
                avail_c = min(smem_shape[1], padded2d.shape[1] - bc)
                if avail_r <= 0 or avail_c <= 0:
                    continue
                size = avail_r * avail_c
                counters.global_load_bytes += size * _FP64_BYTES
                counters.shared_store_requests += max(
                    1, math.ceil(size / _STORE_LANES)
                )
                if spec.use_async_copy:
                    counters.async_copies += 1
                else:
                    counters.register_intermediate_bytes += size * _FP64_BYTES

        # -- all tiles at once ----------------------------------------------
        n_a = -(-rows // t_r)
        n_b = -(-cols // t_c)
        n_tiles = n_a * n_b
        deltas, per_tile = vector.probe(smem_shape)

        if vector.kind == "1d":
            k_rows = vector.program.tile.k_rows
            ext = np.zeros(
                (n_b - 1) * t_c + k_rows + _1D_TAIL, dtype=np.float64
            )
            flat = padded2d.reshape(-1)
            ext[: flat.shape[0]] = flat
            bases = np.arange(n_b) * t_c
            accs = vector.execute_batch_1d(
                ext, bases, n_tiles, profiler, deltas
            )
            # accumulator (r, q) holds output base + 8*q + r
            full = np.ascontiguousarray(accs.transpose(0, 2, 1)).reshape(-1)
            out = np.ascontiguousarray(full[:cols]).reshape(1, cols)
        else:
            tile = vector.program.tile
            k_rows, w_cols = tile.k_rows, tile.w_cols
            ext = np.zeros(
                ((n_a - 1) * t_r + k_rows, (n_b - 1) * t_c + w_cols),
                dtype=np.float64,
            )
            ext[: padded2d.shape[0], : padded2d.shape[1]] = padded2d
            windows = sliding_window_view(ext, (k_rows, w_cols))[
                ::t_r, ::t_c
            ]
            x = np.ascontiguousarray(
                windows.reshape(n_tiles, k_rows, w_cols)
            )
            tiles = vector.execute_batch_2d(x, n_tiles, profiler, deltas)
            full = tiles.reshape(n_a, n_b, t_r, t_c).transpose(0, 2, 1, 3)
            out = np.ascontiguousarray(
                full.reshape(n_a * t_r, n_b * t_c)[:rows, :cols]
            )

        counters += per_tile.scaled(n_tiles)
        counters.global_store_bytes += rows * cols * _FP64_BYTES
        events = device.events_since(start)
        span.add_events(events)
    if profiler is not None:
        profiler.note_sweep(spec, events)
    return out, events
