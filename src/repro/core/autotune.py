"""Configuration autotuner.

Given a 2D kernel, search the execution-configuration space the
repository exposes — temporal fusion factor (Section IV-A) and output
tile shape (Section III-B's reuse/compute tradeoff) — measure each
candidate's footprint on the simulator, and pick the configuration the
cost model ranks fastest.  This automates the choices the paper makes
by hand (3x fusion for radius-1 kernels, 8x8 tiles for radius 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import FootprintScale, MethodTraits
from repro.core._deprecation import suppress_engine_deprecation
from repro.core.engine2d import LoRAStencil2D
from repro.core.fusion import fuse_kernel
from repro.perf.costmodel import gstencil_per_second
from repro.perf.machine import A100, MachineSpec
from repro.stencil.weights import StencilWeights

__all__ = ["Candidate", "TuneResult", "autotune_2d", "DEFAULT_TRAITS"]

DEFAULT_TRAITS = MethodTraits(
    tcu_efficiency=0.86,
    cuda_efficiency=0.40,
    dram_efficiency=0.85,
    smem_efficiency=0.85,
    issue_efficiency=0.60,
)


@dataclass(frozen=True)
class Candidate:
    """One evaluated (fusion, tile) configuration."""

    fusion: int
    tile_shape: tuple[int, int]
    gstencil_per_s: float
    mma_per_point: float
    loads_per_point: float


@dataclass(frozen=True)
class TuneResult:
    """Autotuning outcome: the winner plus the whole candidate table."""

    best: Candidate
    candidates: tuple[Candidate, ...]

    def build_engine(self, weights: StencilWeights) -> LoRAStencil2D:
        """Instantiate the winning engine for ``weights``."""
        if self.best.fusion > 1:
            weights = fuse_kernel(weights, self.best.fusion).fused
        with suppress_engine_deprecation():
            return LoRAStencil2D(
                weights.as_matrix(), tile_shape=self.best.tile_shape
            )


def autotune_2d(
    weights: StencilWeights,
    fusion_options: tuple[int, ...] = (1, 2, 3),
    tile_options: tuple[tuple[int, int], ...] = ((8, 8), (8, 16), (16, 16)),
    measure_grid: tuple[int, int] = (48, 48),
    traits: MethodTraits = DEFAULT_TRAITS,
    machine: MachineSpec = A100,
    seed: int = 0,
) -> TuneResult:
    """Measure every (fusion, tile) candidate and return the ranking.

    Fused candidates amortize one sweep over ``fusion`` timesteps, so
    all scores are per *base* timestep and directly comparable.
    """
    if weights.ndim != 2:
        raise ValueError(f"autotune_2d needs a 2D kernel, got {weights.ndim}D")
    rng = np.random.default_rng(seed)
    candidates: list[Candidate] = []
    for fusion in fusion_options:
        fused = fuse_kernel(weights, fusion).fused if fusion > 1 else weights
        h = fused.radius
        x = rng.normal(size=tuple(s + 2 * h for s in measure_grid))
        for tile_shape in tile_options:
            with suppress_engine_deprecation():
                engine = LoRAStencil2D(fused.as_matrix(), tile_shape=tile_shape)
            _, counters = engine.apply_simulated(x)
            points = measure_grid[0] * measure_grid[1] * fusion
            fp = FootprintScale(counters=counters, points=points)
            candidates.append(
                Candidate(
                    fusion=fusion,
                    tile_shape=tile_shape,
                    gstencil_per_s=gstencil_per_second(fp, traits, machine),
                    mma_per_point=counters.mma_ops / points,
                    loads_per_point=counters.shared_load_requests / points,
                )
            )
    ranked = sorted(candidates, key=lambda c: c.gstencil_per_s, reverse=True)
    return TuneResult(best=ranked[0], candidates=tuple(ranked))
