"""LoRAStencil 2D executor.

Two execution paths share one decomposition:

* :meth:`LoRAStencil2D.apply` — the *functional* path: each rank-1 term
  is a separable filter (vertical pass with ``u``, horizontal with
  ``v``), vectorized with NumPy over the whole grid.  Used for
  correctness oracles and large functional runs.
* :meth:`LoRAStencil2D.apply_simulated` — the *faithful* path: the grid
  is swept block by block exactly like the CUDA implementation — global
  -> shared copies (``cp.async`` when enabled), 8x8 output tiles computed
  by :class:`~repro.core.rdg.RDGTileCompute` on the TCU simulator, and
  accumulator stores back to DRAM — producing both the numeric result and
  the hardware event counts the figures consume.

Both paths use the repository-wide convention: input is padded by the
stencil radius, output is the interior.  Callers holding *unpadded*
grids should prefer ``repro.compile(...)`` and
:meth:`~repro.runtime.facade.CompiledStencil.apply_grid`, which pads
internally through :mod:`repro.stencil.boundary`.

Direct construction is deprecated: ``repro.compile(weights, ...)``
builds (and caches) the same engine inside a
:class:`~repro.runtime.plan.StencilPlan`.
"""

from __future__ import annotations

import numpy as np

from repro.core._deprecation import warn_engine_deprecation
from repro.core.config import OptimizationConfig
from repro.core.lowrank import Decomposition, decompose
from repro.core.rdg import OUT_TILE, RDGTileCompute
from repro.errors import ShapeError
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.telemetry.spans import TRACER

__all__ = ["LoRAStencil2D", "DEFAULT_BLOCK_2D"]

#: Paper Table II blocking for the 2D kernels (rows x cols of outputs).
DEFAULT_BLOCK_2D = (32, 64)


class LoRAStencil2D:
    """Low-rank tensorized executor for one 2D stencil kernel."""

    def __init__(
        self,
        weights: StencilWeights | np.ndarray,
        config: OptimizationConfig | None = None,
        decomposition: Decomposition | None = None,
        tile_shape: tuple[int, int] = (OUT_TILE, OUT_TILE),
    ) -> None:
        warn_engine_deprecation("direct LoRAStencil2D(...) construction")
        if isinstance(weights, StencilWeights):
            if weights.ndim != 2:
                raise ShapeError(
                    f"LoRAStencil2D requires 2D weights, got {weights.ndim}D"
                )
            w = weights.as_matrix()
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.ndim != 2 or w.shape[0] != w.shape[1] or w.shape[0] % 2 != 1:
                raise ShapeError(
                    f"weight matrix must be square with odd side, got {w.shape}"
                )
        self.weight_matrix = w
        self.radius = (w.shape[0] - 1) // 2
        self.config = config or OptimizationConfig()
        self.decomposition = decomposition or decompose(w)
        self.tile = RDGTileCompute(
            self.decomposition,
            self.radius,
            self.config,
            out_rows=tile_shape[0],
            out_cols=tile_shape[1],
        )

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Apply the stencil to a padded array; returns the interior.

        Computes ``sum_k U_k X V_k`` as a sum of separable filters —
        mathematically identical to the simulated MCM.
        """
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 2:
            raise ShapeError(f"expected 2D input, got {padded.ndim}D")
        h = self.radius
        rows, cols = padded.shape[0] - 2 * h, padded.shape[1] - 2 * h
        if rows <= 0 or cols <= 0:
            raise ShapeError(
                f"padded input {padded.shape} too small for radius {h}"
            )
        out = np.zeros((rows, cols), dtype=np.float64)
        for term in self.decomposition.matrix_terms:
            pd, s = term.pad, term.size
            tmp = np.zeros((rows, padded.shape[1]), dtype=np.float64)
            for t in range(s):
                tmp += term.u[t] * padded[pd + t : pd + t + rows, :]
            for r in range(s):
                out += term.v[r] * tmp[:, pd + r : pd + r + cols]
        for term in self.decomposition.scalar_terms:
            out += term.scalar_weight * padded[h : h + rows, h : h + cols]
        return out

    # ------------------------------------------------------------------
    # simulated path
    # ------------------------------------------------------------------
    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block: tuple[int, int] | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Warp-level execution on the TCU simulator.

        Returns ``(interior, counters)`` where ``counters`` holds the
        events of this sweep only.
        """
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 2:
            raise ShapeError(f"expected 2D input, got {padded.ndim}D")
        h = self.radius
        rows, cols = padded.shape[0] - 2 * h, padded.shape[1] - 2 * h
        if rows <= 0 or cols <= 0:
            raise ShapeError(
                f"padded input {padded.shape} too small for radius {h}"
            )

        device = device or Device()
        start = device.snapshot()
        warp = device.warp()
        gmem_in = device.global_array(padded, name="input")
        gmem_out = device.global_array(
            np.zeros((rows, cols), dtype=np.float64), name="output"
        )

        if block is None:
            block = DEFAULT_BLOCK_2D
        t_r, t_c = self.tile.out_rows, self.tile.out_cols
        block_r = min(_round_up(rows, t_r), _round_up(max(block[0], t_r), t_r))
        block_c = min(_round_up(cols, t_c), _round_up(max(block[1], t_c), t_c))

        # shared tile large enough for every input window of the block
        smem_rows = block_r + self.tile.k_rows - t_r
        smem_cols = block_c + self.tile.w_cols - t_c

        with TRACER.span(
            "tcu.sweep", category="tcu", ndim=2, shape=f"{rows}x{cols}"
        ) as span:
            for br in range(0, rows, block_r):
                for bc in range(0, cols, block_c):
                    smem = device.shared((smem_rows, smem_cols), name="block")
                    self._fill_shared(gmem_in, smem, br, bc, padded.shape)
                    r_lim = min(block_r, rows - br)
                    c_lim = min(block_c, cols - bc)
                    for tr in range(0, r_lim, t_r):
                        for tc in range(0, c_lim, t_c):
                            out_tile = self.tile.compute_tile(warp, smem, tr, tc)
                            vr = min(t_r, rows - (br + tr))
                            vc = min(t_c, cols - (bc + tc))
                            gmem_out.write(
                                (
                                    slice(br + tr, br + tr + vr),
                                    slice(bc + tc, bc + tc + vc),
                                ),
                                out_tile[:vr, :vc],
                            )
            events = device.events_since(start)
            span.add_events(events)
        return gmem_out.data, events

    def _fill_shared(self, gmem_in, smem, br: int, bc: int, padded_shape) -> None:
        """Copy the block's input window global -> shared (clamped at the
        grid edge; shared memory is zero-initialized so out-of-range
        reads contribute through zero weights only)."""
        avail_r = min(smem.shape[0], padded_shape[0] - br)
        avail_c = min(smem.shape[1], padded_shape[1] - bc)
        if avail_r <= 0 or avail_c <= 0:
            return
        gmem_in.copy_to_shared(
            (slice(br, br + avail_r), slice(bc, bc + avail_c)),
            smem,
            0,
            0,
            use_async=self.config.use_async_copy,
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.decomposition.rank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LoRAStencil2D(radius={self.radius}, rank={self.rank}, "
            f"method={self.decomposition.method!r}, config={self.config.label()})"
        )


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to
