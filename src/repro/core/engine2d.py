"""LoRAStencil 2D executor.

Two execution paths share one decomposition:

* :meth:`LoRAStencil2D.apply` — the *functional* path: each rank-1 term
  is a separable filter (vertical pass with ``u``, horizontal with
  ``v``), vectorized with NumPy over the whole grid.  Used for
  correctness oracles and large functional runs.
* :meth:`LoRAStencil2D.apply_simulated` — the *faithful* path: the grid
  is swept block by block exactly like the CUDA implementation — global
  -> shared copies (``cp.async`` when enabled), 8x8 output tiles
  computed by interpreting the engine's **lowered tile program** (see
  :mod:`repro.core.lowering`) on the TCU simulator, and accumulator
  stores back to DRAM — producing both the numeric result and the
  hardware event counts the figures consume.  The block-sweep
  orchestration itself lives in :func:`repro.core.sweep.run_block_sweep`
  (shared with the 1D and 3D engines); this engine only contributes the
  tile provider.  ``oracle=True`` computes tiles through the eager
  :meth:`~repro.core.rdg.RDGTileCompute.compute_tile` path instead —
  the correctness oracle the schedule-equivalence suite compares
  against.

Both paths use the repository-wide convention: input is padded by the
stencil radius, output is the interior.  Callers holding *unpadded*
grids should prefer ``repro.compile(...)`` and
:meth:`~repro.runtime.facade.CompiledStencil.apply_grid`, which pads
internally through :mod:`repro.stencil.boundary`.

Direct construction is deprecated: ``repro.compile(weights, ...)``
builds (and caches) the same engine inside a
:class:`~repro.runtime.plan.StencilPlan`.
"""

from __future__ import annotations

import numpy as np

from repro.core._deprecation import warn_engine_deprecation
from repro.core.config import OptimizationConfig
from repro.core.lowrank import Decomposition, decompose
from repro.core.rdg import OUT_TILE, RDGTileCompute
from repro.core.sweep import SweepSpec, run_block_sweep, validate_padded
from repro.errors import PerfError, ShapeError
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.tcu.program import execute_program

__all__ = ["LoRAStencil2D", "DEFAULT_BLOCK_2D"]

#: Paper Table II blocking for the 2D kernels (rows x cols of outputs).
DEFAULT_BLOCK_2D = (32, 64)


class LoRAStencil2D:
    """Low-rank tensorized executor for one 2D stencil kernel."""

    def __init__(
        self,
        weights: StencilWeights | np.ndarray,
        config: OptimizationConfig | None = None,
        decomposition: Decomposition | None = None,
        tile_shape: tuple[int, int] = (OUT_TILE, OUT_TILE),
    ) -> None:
        warn_engine_deprecation("direct LoRAStencil2D(...) construction")
        if isinstance(weights, StencilWeights):
            if weights.ndim != 2:
                raise ShapeError(
                    f"LoRAStencil2D requires 2D weights, got {weights.ndim}D"
                )
            w = weights.as_matrix()
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.ndim != 2 or w.shape[0] != w.shape[1] or w.shape[0] % 2 != 1:
                raise ShapeError(
                    f"weight matrix must be square with odd side, got {w.shape}"
                )
        self.weight_matrix = w
        self.radius = (w.shape[0] - 1) // 2
        self.config = config or OptimizationConfig()
        self.decomposition = decomposition or decompose(w)
        self.tile = RDGTileCompute(
            self.decomposition,
            self.radius,
            self.config,
            out_rows=tile_shape[0],
            out_cols=tile_shape[1],
        )
        self._lowered = None

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    @property
    def lowered(self):
        """The scheduled tile program this engine executes.

        A :class:`~repro.core.lowering.LoweredTile` bound by the plan's
        lowering pipeline (or built lazily on first use for directly
        constructed engines); ``None`` for CUDA-core configurations,
        which have no tensor-core program.
        """
        if self._lowered is None and self.config.use_tensor_cores:
            from repro.core.lowering import lower_engine

            self._lowered = lower_engine(self)
        return self._lowered

    def bind_lowered(self, lowered) -> None:
        """Attach a pipeline-produced lowered program to this engine."""
        self._lowered = lowered

    def tile_source(self, oracle: bool = False, profiler=None):
        """The tile provider the sweep driver executes.

        Interprets the lowered program by default; ``oracle=True`` (or a
        CUDA-core config, which has no program) selects the eager
        :meth:`~repro.core.rdg.RDGTileCompute.compute_tile` path.
        ``profiler`` opts the interpreter into per-instruction
        attribution (incompatible with the eager path, which has no
        instructions to attribute to).
        """
        lowered = None if oracle else self.lowered
        if lowered is None:
            if profiler is not None:
                raise PerfError(
                    "per-instruction profiling requires the lowered "
                    "tensor-core program (no oracle/CUDA-core path)"
                )
            return self.tile.compute_tile
        program = lowered.program

        def _compute(warp, smem, row, col):
            return execute_program(program, warp, smem, row, col, profiler)

        return _compute

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Apply the stencil to a padded array; returns the interior.

        Computes ``sum_k U_k X V_k`` as a sum of separable filters —
        mathematically identical to the simulated MCM.
        """
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 2:
            raise ShapeError(f"expected 2D input, got {padded.ndim}D")
        h = self.radius
        rows, cols = padded.shape[0] - 2 * h, padded.shape[1] - 2 * h
        if rows <= 0 or cols <= 0:
            raise ShapeError(
                f"padded input {padded.shape} too small for radius {h}"
            )
        out = np.zeros((rows, cols), dtype=np.float64)
        for term in self.decomposition.matrix_terms:
            pd, s = term.pad, term.size
            tmp = np.zeros((rows, padded.shape[1]), dtype=np.float64)
            for t in range(s):
                tmp += term.u[t] * padded[pd + t : pd + t + rows, :]
            for r in range(s):
                out += term.v[r] * tmp[:, pd + r : pd + r + cols]
        for term in self.decomposition.scalar_terms:
            out += term.scalar_weight * padded[h : h + rows, h : h + cols]
        return out

    # ------------------------------------------------------------------
    # simulated path
    # ------------------------------------------------------------------
    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block: tuple[int, int] | None = None,
        oracle: bool = False,
        profiler=None,
        verify=None,
        policy=None,
        report=None,
        backend: str | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Warp-level execution on the TCU simulator.

        Returns ``(interior, counters)`` where ``counters`` holds the
        events of this sweep only.  ``backend`` selects the execution
        backend (``"interpreter"`` | ``"vectorized"`` | ``"oracle"``);
        the legacy ``oracle=True`` flag is equivalent to
        ``backend="oracle"``, running the eager tile computation instead
        of the lowered program (identical by the schedule-equivalence
        guarantee; kept as the oracle).  The vectorized backend computes
        all tiles at once with bit-identical numerics and counters, but
        does not compose with ``verify``/``policy``/``report`` (typed
        :class:`~repro.errors.BackendError`).
        ``profiler`` opts into per-instruction attribution (see
        :mod:`repro.telemetry.perf`).  ``verify="abft"`` checksum-
        verifies every tile and staging copy with recovery bounded by
        ``policy`` (a :class:`repro.faults.RecoveryPolicy`), counting
        into ``report`` (a :class:`repro.faults.FaultReport`).
        """
        from repro.runtime.backends import engine_backend

        backend = engine_backend(backend, oracle)
        padded, (rows, cols) = validate_padded(padded, 2, self.radius)
        t = self.tile
        spec = SweepSpec(
            interior=(rows, cols),
            tile=(t.out_rows, t.out_cols),
            block=block or DEFAULT_BLOCK_2D,
            smem_halo=(t.k_rows - t.out_rows, t.w_cols - t.out_cols),
            use_async_copy=self.config.use_async_copy,
            ndim=2,
            shape_label=f"{rows}x{cols}",
        )
        if backend == "vectorized":
            if verify or policy is not None or report is not None:
                from repro.errors import BackendError

                raise BackendError(
                    "the vectorized backend does not support ABFT "
                    "verification or fault recovery; use "
                    "backend='interpreter'"
                )
            lowered = self.lowered
            vector = lowered.vector if lowered is not None else None
            if vector is not None:
                return run_block_sweep(
                    padded,
                    spec,
                    None,
                    device=device,
                    profiler=profiler,
                    vector=vector,
                )
            backend = "interpreter"  # CUDA-core config: nothing to batch
        guard = None
        if verify:
            from repro.faults.abft import make_guard

            guard = make_guard(
                self, verify, policy=policy, report=report, label="2d"
            )
        return run_block_sweep(
            padded,
            spec,
            self.tile_source(oracle=backend == "oracle", profiler=profiler),
            device=device,
            profiler=profiler,
            guard=guard,
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of rank-1 terms in the decomposition."""
        return self.decomposition.rank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LoRAStencil2D(radius={self.radius}, rank={self.rank}, "
            f"method={self.decomposition.method!r}, config={self.config.label()})"
        )
