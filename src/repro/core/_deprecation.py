"""Deprecation plumbing for the legacy engine constructors.

Direct construction of ``LoRAStencil{1,2,3}D`` is deprecated in favour
of :func:`repro.compile`, which routes through the plan cache.  The
library itself still builds engine instances internally (plans own one,
the 3D engine builds a 2D engine per kernel plane, the cluster models
build one per subdomain); those sites wrap construction in
:func:`suppress_engine_deprecation` so only *user* construction warns.

The suppression flag is thread-local: the runtime's sharded executor may
build plans concurrently without leaking suppression across threads.
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from typing import Iterator

__all__ = ["suppress_engine_deprecation", "warn_engine_deprecation"]

_state = threading.local()


def _depth() -> int:
    return getattr(_state, "depth", 0)


@contextlib.contextmanager
def suppress_engine_deprecation() -> Iterator[None]:
    """Context manager: engine constructors inside do not warn."""
    _state.depth = _depth() + 1
    try:
        yield
    finally:
        _state.depth = _depth() - 1


def warn_engine_deprecation(old: str, new: str = "repro.compile(...)") -> None:
    """Emit the constructor deprecation warning unless suppressed.

    ``stacklevel=3`` points the warning at the caller of the deprecated
    constructor (user code), not at the constructor itself.
    """
    if _depth() > 0:
        return
    warnings.warn(
        f"{old} is deprecated; use {new} instead — it returns a cached, "
        "compile-once plan with batched and sharded execution",
        DeprecationWarning,
        stacklevel=3,
    )
