"""Sustained simulated execution: multi-iteration runs with double
buffering on the device.

The per-sweep engines return fresh arrays; a production stencil run
ping-pongs two DRAM buffers across thousands of timesteps.
:class:`SimulationDriver` reproduces that structure on the simulator —
one :class:`~repro.tcu.device.Device` whose counters accumulate over the
whole run — and reports sustained statistics (events per point-step,
peak shared usage, modelled sustained GStencil/s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import FootprintScale, MethodTraits
from repro.core._deprecation import suppress_engine_deprecation
from repro.core.engine2d import LoRAStencil2D
from repro.perf.costmodel import gstencil_per_second
from repro.perf.machine import A100, MachineSpec
from repro.stencil.grid import Grid
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device

__all__ = ["RunReport", "SimulationDriver"]


@dataclass(frozen=True)
class RunReport:
    """Everything one sustained run produced."""

    final: np.ndarray
    steps: int
    points: int
    counters: EventCounters
    peak_shared_bytes: int

    @property
    def point_steps(self) -> int:
        return self.points * self.steps

    def footprint(self) -> FootprintScale:
        """Per point-step footprint of the sustained run."""
        return FootprintScale(counters=self.counters, points=self.point_steps)

    def sustained_gstencil(
        self,
        traits: MethodTraits,
        machine: MachineSpec = A100,
    ) -> float:
        """Modelled sustained GStencil/s for this run's footprint."""
        return gstencil_per_second(self.footprint(), traits, machine)


class SimulationDriver:
    """Double-buffered multi-step simulated execution (2D)."""

    def __init__(
        self,
        weights: StencilWeights,
        boundary: str = "constant",
        engine: LoRAStencil2D | None = None,
    ) -> None:
        if weights.ndim != 2:
            raise ValueError(
                f"SimulationDriver supports 2D stencils, got {weights.ndim}D"
            )
        self.weights = weights
        self.boundary = boundary
        if engine is None:
            with suppress_engine_deprecation():
                engine = LoRAStencil2D(weights.as_matrix())
        self.engine = engine

    def run(self, initial: np.ndarray, steps: int) -> RunReport:
        """Run ``steps`` simulated sweeps, accumulating device counters."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        initial = np.asarray(initial, dtype=np.float64)
        device = Device()
        grid = Grid(initial, self.weights.radius, boundary=self.boundary)
        for _ in range(steps):
            grid.step(
                lambda padded: self.engine.apply_simulated(
                    padded, device=device
                )[0]
            )
        return RunReport(
            final=grid.interior,
            steps=steps,
            points=int(np.prod(initial.shape)),
            counters=device.counters.snapshot(),
            peak_shared_bytes=device.peak_shared_bytes,
        )
