"""Temporal kernel fusion (Section IV-A).

Small kernels waste TCU fragments: updating an 8x8 tile loads a 16x16
input window (eight 4x8 fragments), of which a radius-1 kernel uses only
the inner 10x10 elements.  Fusing ``k`` timesteps into one composed
kernel of radius ``k*h`` fills the window — the paper fuses Box-2D9P
three times into a 7x7 (Box-2D49P-sized) kernel, cutting the wasted
elements from 156 to 60 (a 96/156 ~ 61.54% reduction).

Fusion is exact: applying the composed kernel once equals applying the
base kernel ``k`` times (the composed weight array is the k-fold full
convolution of the base array).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

from repro.stencil.weights import StencilWeights, compose_weights

__all__ = ["FusedKernel", "fuse_kernel", "fragment_waste", "fusion_saving"]

#: Elements of the 16x16 input window loaded per 8x8 output tile.
_WINDOW_ELEMENTS = 16 * 16


@dataclass(frozen=True)
class FusedKernel:
    """A base kernel temporally fused ``times`` times."""

    base: StencilWeights
    times: int
    fused: StencilWeights

    @property
    def radius(self) -> int:
        return self.fused.radius

    def steps_for(self, iterations: int) -> int:
        """Fused sweeps needed to cover ``iterations`` base timesteps."""
        if iterations % self.times != 0:
            raise ValueError(
                f"{iterations} iterations are not divisible by the fusion "
                f"factor {self.times}"
            )
        return iterations // self.times


def fuse_kernel(base: StencilWeights, times: int) -> FusedKernel:
    """Compose ``base`` with itself ``times`` times (times >= 1)."""
    if times < 1:
        raise ValueError(f"fusion factor must be >= 1, got {times}")
    fused = reduce(compose_weights, [base] * (times - 1), base)
    return FusedKernel(base=base, times=times, fused=fused)


def fragment_waste(radius: int) -> int:
    """Unused elements of the 16x16 window for a radius-``radius`` kernel.

    The 8x8 output tile needs only the ``(8 + 2h)^2`` central elements.
    ``fragment_waste(1) == 156`` and ``fragment_waste(3) == 60``, the
    numbers behind the paper's 61.54% saving.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    used = min(8 + 2 * radius, 16) ** 2
    return _WINDOW_ELEMENTS - used


def fusion_saving(base_radius: int, times: int) -> float:
    """Fraction of wasted window elements removed by ``times``-fold fusion."""
    before = fragment_waste(base_radius)
    after = fragment_waste(base_radius * times)
    if before == 0:
        return 0.0
    return (before - after) / before
