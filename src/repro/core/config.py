"""Optimization toggles (the levels of the Fig. 9 breakdown)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OptimizationConfig"]


@dataclass(frozen=True)
class OptimizationConfig:
    """Which LoRAStencil optimizations are active.

    The four Fig. 9 configurations are::

        RDG (CUDA cores)   OptimizationConfig(use_tensor_cores=False)
        + TensorCore       OptimizationConfig(use_bvs=False, use_async_copy=False)
        + BVS              OptimizationConfig(use_async_copy=False)
        + AsyncCopy        OptimizationConfig()            # everything on
    """

    use_tensor_cores: bool = True
    use_bvs: bool = True
    use_async_copy: bool = True

    def label(self) -> str:
        """Short display name used by Fig. 9 and the footprint cache."""
        if not self.use_tensor_cores:
            return "RDG(CUDA)"
        parts = ["RDG+TCU"]
        if self.use_bvs:
            parts.append("BVS")
        if self.use_async_copy:
            parts.append("AC")
        return "+".join(parts)

    @classmethod
    def breakdown_levels(cls) -> list["OptimizationConfig"]:
        """The cumulative optimization ladder of Fig. 9."""
        return [
            cls(use_tensor_cores=False, use_bvs=False, use_async_copy=False),
            cls(use_tensor_cores=True, use_bvs=False, use_async_copy=False),
            cls(use_tensor_cores=True, use_bvs=True, use_async_copy=False),
            cls(use_tensor_cores=True, use_bvs=True, use_async_copy=True),
        ]
