"""Optimization toggles (the levels of the Fig. 9 breakdown)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OptimizationConfig"]


@dataclass(frozen=True)
class OptimizationConfig:
    """Which LoRAStencil optimizations are active.

    The four Fig. 9 configurations are::

        RDG (CUDA cores)   OptimizationConfig(use_tensor_cores=False)
        + TensorCore       OptimizationConfig(use_bvs=False, use_async_copy=False)
        + BVS              OptimizationConfig(use_async_copy=False)
        + AsyncCopy        OptimizationConfig()            # everything on

    ``schedule`` selects the tile-program instruction schedule the
    lowering pipeline emits (see :mod:`repro.core.lowering`):
    ``"eager"`` keeps the canonical emission order, ``"prefetch"``
    hoists every fragment load to the front of the tile; additional
    schedules can be registered via
    :func:`repro.core.lowering.register_schedule`.  Every valid
    schedule is numerically identical — the knob only moves the
    load->use distance the simulator would hide latency with.
    """

    use_tensor_cores: bool = True
    use_bvs: bool = True
    use_async_copy: bool = True
    schedule: str = "eager"

    def label(self) -> str:
        """Short display name used by Fig. 9 and the footprint cache."""
        if not self.use_tensor_cores:
            return "RDG(CUDA)"
        parts = ["RDG+TCU"]
        if self.use_bvs:
            parts.append("BVS")
        if self.use_async_copy:
            parts.append("AC")
        if self.schedule != "eager":
            parts.append(f"sched:{self.schedule}")
        return "+".join(parts)

    @classmethod
    def breakdown_levels(cls) -> list["OptimizationConfig"]:
        """The cumulative optimization ladder of Fig. 9."""
        return [
            cls(use_tensor_cores=False, use_bvs=False, use_async_copy=False),
            cls(use_tensor_cores=True, use_bvs=False, use_async_copy=False),
            cls(use_tensor_cores=True, use_bvs=True, use_async_copy=False),
            cls(use_tensor_cores=True, use_bvs=True, use_async_copy=True),
        ]
