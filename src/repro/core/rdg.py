"""Residual Dimension Gathering: the warp-level tile computation.

One :class:`RDGTileCompute` is built per stencil kernel.  It precomputes,
for every rank-1 term of the decomposition, the register-resident weight
fragments:

* the A fragments slicing the banded ``U`` (vertical gather, Step 1);
* the B fragments slicing the banded ``V`` (horizontal gather, Step 2),
  pre-permuted for Butterfly Vector Swapping when BVS is enabled.

:meth:`RDGTileCompute.compute_tile` then executes the Matrix Chain
Multiplication ``U X V`` for an ``out_rows x out_cols`` output tile on
the TCU simulator (the default 8x8 is the paper's configuration; larger
multiples of 8 trade more accumulators for better input reuse — the
"ideal 2h x 2h update" of Section III-B's analysis):

* **Step 1** — ``T = U @ X``: for each (8-row, 8-column) block pair of
  the gather, accumulate over the k-blocks of ``U``
  (``(mo/8) * (K/4) * (W/8)`` MMAs; 8 for the paper's 7x7 example);
* **BVS** — split each ``T`` accumulator into two left operands.  With
  BVS this is a register reinterpretation (zero shuffles); without it,
  the naive column split prices its shuffles;
* **Step 2** — ``out += T' @ V'`` (``(mo/8) * (W/4) * (no/8)`` MMAs;
  4 in the example), accumulating directly into the tile's output
  accumulators, which also realizes the sum over rank-1 terms of Eq. 9
  for free.

Input fragments are loaded **once per tile** and shared by all rank-1
terms — the fragment reuse PMA is designed around.  The pyramid's scalar
apex term never touches the TCU: it is a centre-point ``axpy`` on the
CUDA cores.

``compute_tile_cuda`` is the Fig. 9 baseline: the same RDG arithmetic
executed on CUDA cores (scalar loads + FLOP counting, no fragments).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import OptimizationConfig
from repro.core.lowrank import Decomposition
from repro.core.uvbuild import build_u_matrix, build_v_matrix, butterfly_row_order
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.tcu.memory import SharedMemory
from repro.tcu.warp import Warp

__all__ = ["RDGTileCompute", "OUT_TILE"]

#: Default output tile side (one 8x8 accumulator, the paper's config).
OUT_TILE = 8


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to


class RDGTileCompute:
    """Precomputed RDG weights + the per-tile MCM executor."""

    def __init__(
        self,
        decomposition: Decomposition,
        radius: int,
        config: OptimizationConfig | None = None,
        out_rows: int = OUT_TILE,
        out_cols: int = OUT_TILE,
    ) -> None:
        if decomposition.full_side != 2 * radius + 1:
            raise ValueError(
                f"decomposition side {decomposition.full_side} does not match "
                f"radius {radius}"
            )
        if out_rows % 8 or out_cols % 8 or out_rows < 8 or out_cols < 8:
            raise ValueError(
                f"output tile must be positive multiples of 8, got "
                f"{out_rows}x{out_cols}"
            )
        self.decomposition = decomposition
        self.radius = radius
        self.config = config or OptimizationConfig()
        self.out_rows = out_rows
        self.out_cols = out_cols

        h = radius
        #: rows of the input window X (k-dimension of Step 1), 4-aligned
        self.k_rows = _round_up(out_rows + 2 * h, 4)
        #: columns of the input window X, 8-aligned
        self.w_cols = _round_up(out_cols + 2 * h, 8)

        # weight fragments indexed [term][row_block][k_block] for U and
        # [term][w_block][out_col_block] -> (lo, hi) for V
        self._u_frags: list[list[list[Fragment]]] = []
        self._v_frags: list[list[list[tuple[Fragment, Fragment]]]] = []
        self._u_mats: list[np.ndarray] = []
        self._v_mats: list[np.ndarray] = []
        self._build_weight_fragments()

    # ------------------------------------------------------------------
    # weight preparation (once per kernel)
    # ------------------------------------------------------------------
    def _build_weight_fragments(self) -> None:
        order = butterfly_row_order(self.w_cols)
        for term in self.decomposition.matrix_terms:
            u_mat = build_u_matrix(
                term.u, self.out_rows, self.k_rows, offset=term.pad
            )
            v_mat = build_v_matrix(
                term.v, self.w_cols, self.out_cols, offset=term.pad
            )
            self._u_mats.append(u_mat)
            self._v_mats.append(v_mat)

            u_frags = [
                [
                    Fragment.from_matrix(
                        FragmentKind.A,
                        u_mat[8 * rb : 8 * rb + 8, 4 * kb : 4 * kb + 4],
                    )
                    for kb in range(self.k_rows // 4)
                ]
                for rb in range(self.out_rows // 8)
            ]
            self._u_frags.append(u_frags)

            v_perm = v_mat[order, :] if self.config.use_bvs else v_mat
            v_frags = [
                [
                    (
                        Fragment.from_matrix(
                            FragmentKind.B,
                            v_perm[8 * wb : 8 * wb + 4, 8 * ob : 8 * ob + 8],
                        ),
                        Fragment.from_matrix(
                            FragmentKind.B,
                            v_perm[8 * wb + 4 : 8 * wb + 8, 8 * ob : 8 * ob + 8],
                        ),
                    )
                    for ob in range(self.out_cols // 8)
                ]
                for wb in range(self.w_cols // 8)
            ]
            self._v_frags.append(v_frags)

    # ------------------------------------------------------------------
    # instruction-count bookkeeping (Eq. 12 / Eq. 16)
    # ------------------------------------------------------------------
    @property
    def fragment_loads_per_tile(self) -> int:
        """Input fragments loaded per output tile (Eq. 12 numerator)."""
        return (self.k_rows // 4) * (self.w_cols // 8)

    @property
    def mma_per_tile(self) -> int:
        """MMA instructions per output tile (Eq. 16 numerator)."""
        n_terms = len(self.decomposition.matrix_terms)
        row_blocks = self.out_rows // 8
        step1 = row_blocks * (self.k_rows // 4) * (self.w_cols // 8)
        step2 = row_blocks * (self.w_cols // 4) * (self.out_cols // 8)
        return n_terms * (step1 + step2)

    @property
    def points_per_tile(self) -> int:
        return self.out_rows * self.out_cols

    # ------------------------------------------------------------------
    # tensor-core path
    # ------------------------------------------------------------------
    def load_input_fragments(
        self,
        warp: Warp,
        smem: SharedMemory,
        row: int,
        col: int,
    ) -> list[list[Fragment]]:
        """Load the tile's input window as B fragments (once per tile)."""
        return [
            [
                warp.load_matrix_sync(
                    FragmentKind.B, smem, row + 4 * kb, col + 8 * wb
                )
                for wb in range(self.w_cols // 8)
            ]
            for kb in range(self.k_rows // 4)
        ]

    def compute_tile(
        self,
        warp: Warp,
        smem: SharedMemory,
        row: int,
        col: int,
    ) -> np.ndarray:
        """RDG for the output tile whose input window starts at
        ``(row, col)`` in shared memory.  Returns the output tile."""
        if not self.config.use_tensor_cores:
            return self.compute_tile_cuda(warp, smem, row, col)

        x_frags = self.load_input_fragments(warp, smem, row, col)
        out_accs: list[list[Fragment | None]] = [
            [None] * (self.out_cols // 8) for _ in range(self.out_rows // 8)
        ]
        for u_frags, v_frags in zip(self._u_frags, self._v_frags):
            for rb in range(self.out_rows // 8):
                # Step 1: vertical gather T = U @ X (one accumulator per
                # 8-column block of the window).
                t_accs: list[Fragment] = []
                for wb in range(self.w_cols // 8):
                    t_acc: Fragment | None = None
                    for kb in range(self.k_rows // 4):
                        t_acc = warp.mma_sync(
                            u_frags[rb][kb], x_frags[kb][wb], t_acc
                        )
                    t_accs.append(t_acc)
                # Step 2: horizontal gather out += T @ V, splitting each
                # T accumulator into two left operands.
                for wb, t_acc in enumerate(t_accs):
                    if self.config.use_bvs:
                        first, second = warp.split_accumulator_bvs(t_acc)
                    else:
                        first, second = warp.split_accumulator_naive(t_acc)
                    for ob in range(self.out_cols // 8):
                        v_lo, v_hi = v_frags[wb][ob]
                        acc = out_accs[rb][ob]
                        acc = warp.mma_sync(first, v_lo, acc)
                        acc = warp.mma_sync(second, v_hi, acc)
                        out_accs[rb][ob] = acc

        out = np.zeros((self.out_rows, self.out_cols), dtype=np.float64)
        for rb in range(self.out_rows // 8):
            for ob in range(self.out_cols // 8):
                acc = out_accs[rb][ob]
                if acc is not None:
                    out[8 * rb : 8 * rb + 8, 8 * ob : 8 * ob + 8] = acc.to_matrix()
        self._apply_scalar_terms(warp, smem, row, col, out)
        return out

    # ------------------------------------------------------------------
    # CUDA-core fallback path (Fig. 9 level 0)
    # ------------------------------------------------------------------
    def compute_tile_cuda(
        self,
        warp: Warp,
        smem: SharedMemory,
        row: int,
        col: int,
    ) -> np.ndarray:
        """The same MCM executed with scalar loads and CUDA-core FLOPs."""
        window = smem.read_scalar_tile(row, col, (self.k_rows, self.w_cols))
        out = np.zeros((self.out_rows, self.out_cols), dtype=np.float64)
        for u_mat, v_mat in zip(self._u_mats, self._v_mats):
            t = u_mat @ window
            out += t @ v_mat
            # 2*m*n*k FLOPs per dense product, charged to the CUDA cores
            warp.counters.cuda_core_flops += 2 * u_mat.shape[0] * u_mat.shape[1] * window.shape[1]
            warp.counters.cuda_core_flops += 2 * t.shape[0] * t.shape[1] * v_mat.shape[1]
        self._apply_scalar_terms(warp, smem, row, col, out)
        return out

    # ------------------------------------------------------------------
    def _apply_scalar_terms(
        self,
        warp: Warp,
        smem: SharedMemory,
        row: int,
        col: int,
        out: np.ndarray,
    ) -> None:
        """Pyramid apex: centre-point scaling on the CUDA cores."""
        h = self.radius
        for term in self.decomposition.scalar_terms:
            centre = smem.read_scalar_tile(
                row + h, col + h, (self.out_rows, self.out_cols)
            )
            warp.cuda_core_axpy(out, term.scalar_weight, centre)
