"""LoRAStencil 3D executor (Algorithm 2).

A 3D kernel of radius ``h`` is a stack of ``2h+1`` 2D weight planes.
Each output plane ``z`` accumulates, for kernel plane ``i``, the 2D
stencil of that plane applied to input slab ``z + i``:

* planes with a **single** nonzero weight (the off-centre planes of star
  kernels) are point-wise multiply-accumulate on the **CUDA cores**;
* every other plane runs the full 2D LoRAStencil on the **tensor
  cores** — this is where the two compute units of the GPU overlap
  (Section IV-C).

All paths use the repository-wide convention: input is padded by the
stencil radius on every axis, output is the interior.  Callers holding
*unpadded* volumes should prefer ``repro.compile(...)`` and
:meth:`~repro.runtime.facade.CompiledStencil.apply_grid`, which pads
internally through :mod:`repro.stencil.boundary`.

Direct construction is deprecated: ``repro.compile(weights, ndim=3)``
builds (and caches) the same engine inside a
:class:`~repro.runtime.plan.StencilPlan`.
"""

from __future__ import annotations

import numpy as np

from repro.core._deprecation import (
    suppress_engine_deprecation,
    warn_engine_deprecation,
)
from repro.core.config import OptimizationConfig
from repro.core.engine2d import LoRAStencil2D
from repro.errors import ShapeError
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.telemetry.spans import TRACER

__all__ = ["LoRAStencil3D", "DEFAULT_BLOCK_3D"]

#: Paper Table II blocking for the 3D kernels.
DEFAULT_BLOCK_3D = (8, 64)


class _PlaneTask:
    """One kernel plane: either a point-wise weight or a 2D engine."""

    def __init__(self, index: int, plane: np.ndarray, config: OptimizationConfig):
        self.index = index
        self.plane = plane
        nz = np.argwhere(plane != 0.0)
        if len(nz) == 1:
            self.pointwise: tuple[int, int, float] | None = (
                int(nz[0][0]),
                int(nz[0][1]),
                float(plane[nz[0][0], nz[0][1]]),
            )
            self.engine: LoRAStencil2D | None = None
        elif len(nz) == 0:
            self.pointwise = None
            self.engine = None
        else:
            self.pointwise = None
            with suppress_engine_deprecation():
                self.engine = LoRAStencil2D(plane, config=config)


class LoRAStencil3D:
    """Plane-decomposed tensorized executor for one 3D stencil kernel."""

    def __init__(
        self,
        weights: StencilWeights | np.ndarray,
        config: OptimizationConfig | None = None,
    ) -> None:
        warn_engine_deprecation("direct LoRAStencil3D(...) construction")
        if isinstance(weights, StencilWeights):
            if weights.ndim != 3:
                raise ShapeError(
                    f"LoRAStencil3D requires 3D weights, got {weights.ndim}D"
                )
            w = weights.array
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.ndim != 3 or len(set(w.shape)) != 1 or w.shape[0] % 2 != 1:
                raise ShapeError(
                    f"weight array must be a cube with odd side, got {w.shape}"
                )
        self.weight_array = w
        self.radius = (w.shape[0] - 1) // 2
        self.config = config or OptimizationConfig()
        self.planes = [
            _PlaneTask(i, w[i], self.config) for i in range(w.shape[0])
        ]

    @property
    def tensor_core_planes(self) -> list[int]:
        """Kernel plane indices executed on the TCU."""
        return [p.index for p in self.planes if p.engine is not None]

    @property
    def cuda_core_planes(self) -> list[int]:
        """Kernel plane indices executed point-wise on CUDA cores."""
        return [p.index for p in self.planes if p.pointwise is not None]

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Apply the stencil to a padded 3D array; returns the interior."""
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 3:
            raise ShapeError(f"expected 3D input, got {padded.ndim}D")
        h = self.radius
        zs, rs, cs = (s - 2 * h for s in padded.shape)
        if min(zs, rs, cs) <= 0:
            raise ShapeError(
                f"padded input {padded.shape} too small for radius {h}"
            )
        out = np.zeros((zs, rs, cs), dtype=np.float64)
        for task in self.planes:
            if task.pointwise is not None:
                pi, pj, wt = task.pointwise
                out += wt * padded[
                    task.index : task.index + zs,
                    pi : pi + rs,
                    pj : pj + cs,
                ]
            elif task.engine is not None:
                for z in range(zs):
                    out[z] += task.engine.apply(padded[z + task.index])
        return out

    # ------------------------------------------------------------------
    # simulated path
    # ------------------------------------------------------------------
    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block: tuple[int, int] | None = None,
        oracle: bool = False,
        profiler=None,
        verify=None,
        policy=None,
        report=None,
        backend: str | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Warp-level execution; returns ``(interior, counters)``.

        TCU planes dispatch per-slab 2D sweeps through the shared
        block-sweep driver (each plane engine interprets its own lowered
        tile program); the point-wise planes charge CUDA-core FLOPs and
        DRAM traffic without touching the tensor cores (Alg. 2's
        dual-unit split).  ``backend`` threads into every plane engine's
        sweep; the legacy ``oracle=True`` flag is equivalent to
        ``backend="oracle"`` (every plane engine on its eager tile
        path).  The vectorized backend rejects ``verify``/``policy``/
        ``report`` with a typed :class:`~repro.errors.BackendError`.
        ``profiler`` is threaded into every plane engine's sweep; the
        point-wise plane traffic lands in the profile's driver residue.
        ``verify``/``policy``/``report`` thread into every plane
        engine's guarded sweep (the point-wise planes carry no MM chain
        to checksum).
        """
        from repro.runtime.backends import engine_backend

        backend = engine_backend(backend, oracle)
        if backend == "vectorized" and (
            verify or policy is not None or report is not None
        ):
            from repro.errors import BackendError

            raise BackendError(
                "the vectorized backend does not support ABFT "
                "verification or fault recovery; use backend='interpreter'"
            )
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 3:
            raise ShapeError(f"expected 3D input, got {padded.ndim}D")
        h = self.radius
        zs, rs, cs = (s - 2 * h for s in padded.shape)
        if min(zs, rs, cs) <= 0:
            raise ShapeError(
                f"padded input {padded.shape} too small for radius {h}"
            )
        device = device or Device()
        start = device.snapshot()
        warp = device.warp()
        out = np.zeros((zs, rs, cs), dtype=np.float64)
        block = block or DEFAULT_BLOCK_3D

        with TRACER.span(
            "tcu.sweep", category="tcu", ndim=3, shape=f"{zs}x{rs}x{cs}"
        ) as span:
            for task in self.planes:
                if task.pointwise is not None:
                    pi, pj, wt = task.pointwise
                    gmem = device.global_array(padded, name=f"plane{task.index}")
                    slab = gmem.read(
                        (
                            slice(task.index, task.index + zs),
                            slice(pi, pi + rs),
                            slice(pj, pj + cs),
                        )
                    )
                    for z in range(zs):
                        warp.cuda_core_axpy(out[z], wt, slab[z])
                elif task.engine is not None:
                    for z in range(zs):
                        tile, _ = task.engine.apply_simulated(
                            padded[z + task.index],
                            device=device,
                            block=block,
                            profiler=profiler,
                            verify=verify,
                            policy=policy,
                            report=report,
                            backend=backend,
                        )
                        warp.cuda_core_axpy(out[z], 1.0, tile)
            gmem_out = device.global_array(np.zeros_like(out), name="output")
            gmem_out.write((slice(None), slice(None), slice(None)), out)
            events = device.events_since(start)
            span.add_events(events)
        return out, events

    # ------------------------------------------------------------------
    # z-streaming simulated path
    # ------------------------------------------------------------------
    def apply_simulated_streaming(
        self,
        padded: np.ndarray,
        device: Device | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Warp-level execution with z-streaming slab reuse.

        The production sweep keeps a rolling window of ``2h+1`` input
        slabs resident in shared memory: advancing one output plane
        copies exactly *one* new slab from DRAM, which every kernel
        plane then reuses.  Relative to :meth:`apply_simulated` (which
        re-copies a slab once per kernel plane) this divides the DRAM
        read traffic by roughly the number of planes touching each slab
        — the correction the performance footprints apply, here measured
        rather than assumed.
        """
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 3:
            raise ShapeError(f"expected 3D input, got {padded.ndim}D")
        h = self.radius
        zs, rs, cs = (s - 2 * h for s in padded.shape)
        if min(zs, rs, cs) <= 0:
            raise ShapeError(
                f"padded input {padded.shape} too small for radius {h}"
            )
        device = device or Device()
        start = device.snapshot()
        warp = device.warp()
        gmem_in = device.global_array(padded, name="input")
        out = np.zeros((zs, rs, cs), dtype=np.float64)

        # shared-slab geometry covering every engine plane's tile windows
        # (including the last, possibly grid-overhanging, tile row/col)
        def _round_up(x: int, to: int) -> int:
            return ((x + to - 1) // to) * to

        engines = [t.engine for t in self.planes if t.engine is not None]
        slab_rows = rs + 2 * h
        slab_cols = cs + 2 * h
        for e in engines:
            t = e.tile
            slab_rows = max(slab_rows, _round_up(rs, t.out_rows) - t.out_rows + t.k_rows)
            slab_cols = max(slab_cols, _round_up(cs, t.out_cols) - t.out_cols + t.w_cols)
        slab_shape = (slab_rows, slab_cols)

        resident: dict[int, "object"] = {}
        sources: dict[int, "object"] = {}  # per-plane lowered tile providers

        def slab(z_idx: int):
            """Fetch (once) the shared copy of input slab ``z_idx``."""
            if z_idx not in resident:
                smem = device.shared(slab_shape, name=f"slab{z_idx}")
                avail_r = min(slab_shape[0], padded.shape[1])
                avail_c = min(slab_shape[1], padded.shape[2])
                gmem_in.copy_to_shared(
                    (z_idx, slice(0, avail_r), slice(0, avail_c)),
                    smem,
                    0,
                    0,
                    use_async=self.config.use_async_copy,
                )
                resident[z_idx] = smem
            return resident[z_idx]

        for z in range(zs):
            # slide the window: drop the slab that fell out of range
            resident.pop(z - 1, None)
            for task in self.planes:
                smem = slab(z + task.index)
                if task.pointwise is not None:
                    pi, pj, wt = task.pointwise
                    centre = smem.read_scalar_tile(pi, pj, (rs, cs))
                    warp.cuda_core_axpy(out[z], wt, centre)
                elif task.engine is not None:
                    tile_engine = task.engine.tile
                    source = sources.setdefault(
                        task.index, task.engine.tile_source()
                    )
                    t_r, t_c = tile_engine.out_rows, tile_engine.out_cols
                    for tr in range(0, rs, t_r):
                        for tc in range(0, cs, t_c):
                            result = source(warp, smem, tr, tc)
                            vr, vc = min(t_r, rs - tr), min(t_c, cs - tc)
                            out[z, tr : tr + vr, tc : tc + vc] += result[:vr, :vc]
        gmem_out = device.global_array(np.zeros_like(out), name="output")
        gmem_out.write((slice(None), slice(None), slice(None)), out)
        return out, device.events_since(start)
