"""The pass-based lowering pipeline: weights -> plan-carried program.

The paper's method is inherently staged — weights, PMA rank-1
decomposition (Eq. 15), banded RDG ``U``/``V`` gather matrices, the
BVS-split MMA chain — and this module makes the staging explicit as a
compiler-style pass pipeline::

    weights --decompose--> engine (decomposition + gather fragments)
            --build_tile_ir--> canonical TileProgram(s)
            --schedule--> scheduled TileProgram(s)  (the plan artifact)

:func:`lower` runs the default :class:`PassPipeline` and returns the
engine plus a :class:`LoweredProgram` — the artifact a
:class:`~repro.runtime.plan.StencilPlan` carries and the sweep driver
executes (the eager :meth:`~repro.core.rdg.RDGTileCompute.compute_tile`
path survives only as the correctness oracle).  Each pass runs under a
``lowering.<pass>`` telemetry span and its wall time is recorded on the
artifact, so ``repro profile`` attributes compile cost per stage.

Schedules are pluggable: ``"eager"`` keeps the canonical emission
order, ``"prefetch"`` hoists fragment loads to the front of the tile
(:func:`repro.tcu.program.schedule_prefetch`), and
:func:`register_schedule` accepts any dependence-preserving rewrite —
the schedule-equivalence suite proves every valid schedule is
bit-identical in numerics *and* event counts, so a registered schedule
only moves the load->use distance available for latency hiding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.config import OptimizationConfig
from repro.core.vectorize import VectorProgram, build_vector_program
from repro.errors import LoweringError
from repro.tcu.program import (
    TileProgram,
    build_tile_program,
    build_tile_program_1d,
    load_use_distance,
    schedule_prefetch,
    validate_schedule,
)
from repro.telemetry.spans import TRACER

__all__ = [
    "LoweredTile",
    "LoweredProgram",
    "LoweringContext",
    "PassPipeline",
    "DEFAULT_PASSES",
    "lower",
    "lower_engine",
    "register_schedule",
    "get_schedule",
    "available_schedules",
    "checksum_footprint",
]

# ---------------------------------------------------------------------------
# schedule registry
# ---------------------------------------------------------------------------
#: A schedule: a dependence-preserving permutation of a tile program.
ScheduleFn = Callable[[TileProgram], TileProgram]

_SCHEDULES: dict[str, ScheduleFn] = {}


def register_schedule(name: str, fn: ScheduleFn) -> ScheduleFn:
    """Register a named schedule for the ``schedule`` pass.

    ``fn`` maps a canonical :class:`~repro.tcu.program.TileProgram` to a
    reordered one; the pipeline re-validates dependences after applying
    it, so a broken schedule fails at lowering time, not at execution.
    Returns ``fn`` (usable as a decorator via ``functools.partial``).
    """
    _SCHEDULES[name] = fn
    return fn


def get_schedule(name: str) -> ScheduleFn:
    """Look up a registered schedule; raises :class:`LoweringError`."""
    try:
        return _SCHEDULES[name]
    except KeyError:
        raise LoweringError(
            f"unknown schedule {name!r}; available: "
            f"{', '.join(available_schedules())}"
        ) from None


def available_schedules() -> tuple[str, ...]:
    """Names accepted by ``OptimizationConfig.schedule``."""
    return tuple(sorted(_SCHEDULES))


register_schedule("eager", lambda program: program)
register_schedule("prefetch", schedule_prefetch)


# ---------------------------------------------------------------------------
# lowered artifacts
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LoweredTile:
    """One scheduled tile program plus its schedule statistics.

    ``vector`` is the batched-NumPy compilation of the same scheduled
    program (the ``vectorize`` pass artifact); ``None`` until that pass
    runs, and excluded from equality/repr — it is derived state.
    """

    program: TileProgram
    schedule: str
    load_use_distance: float
    vector: VectorProgram | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_instrs(self) -> int:
        """Instruction count of the scheduled program."""
        return len(self.program.instrs)

    def op_counts(self) -> dict[str, int]:
        """Histogram of opcodes (``load_x``/``mma``/``split``/…)."""
        counts: dict[str, int] = {}
        for ins in self.program.instrs:
            counts[ins.op] = counts.get(ins.op, 0) + 1
        return counts

    def render(self, limit: int | None = None) -> str:
        """The IR as text, one instruction per line (CLI ``--ir``)."""
        instrs = self.program.instrs
        lines = [f"{i:4d}  {ins!r}" for i, ins in enumerate(instrs[:limit])]
        if limit is not None and len(instrs) > limit:
            lines.append(f"      … {len(instrs) - limit} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class LoweredProgram:
    """The plan-carried lowering artifact for one stencil.

    ``tiles`` holds one entry per tile kernel: a single entry for 1D/2D
    plans, one per kernel plane for 3D plans (``None`` for the
    point-wise CUDA-core planes and empty planes of the plane split).
    ``pass_times`` records ``(pass name, seconds)`` for each pipeline
    stage that produced this artifact.
    """

    ndim: int
    schedule: str
    tiles: tuple[LoweredTile | None, ...]
    pass_times: tuple[tuple[str, float], ...] = ()

    @property
    def tile(self) -> LoweredTile | None:
        """The first real tile (the only one for 1D/2D plans)."""
        for t in self.tiles:
            if t is not None:
                return t
        return None

    @property
    def n_instrs(self) -> int:
        """Total scheduled instructions across every tile program."""
        return sum(t.n_instrs for t in self.tiles if t is not None)

    @property
    def load_use_distance(self) -> float:
        """Mean load->use distance over the real tile programs."""
        dists = [t.load_use_distance for t in self.tiles if t is not None]
        return float(np.mean(dists)) if dists else 0.0

    def describe(self) -> str:
        """One-paragraph summary (plan ``describe`` / CLI output)."""
        n_real = sum(t is not None for t in self.tiles)
        parts = [
            f"schedule {self.schedule!r}",
            f"{self.n_instrs} instrs over {n_real} tile program(s)",
            f"load->use distance {self.load_use_distance:.1f}",
        ]
        return ", ".join(parts)

    def render_ir(self, limit: int | None = None) -> str:
        """Dump every tile program's IR (CLI ``plan --ir``)."""
        blocks = []
        for i, t in enumerate(self.tiles):
            header = f"tile program {i}" if len(self.tiles) > 1 else "tile program"
            if t is None:
                blocks.append(f"{header}: (CUDA-core plane, no program)")
            else:
                blocks.append(
                    f"{header}: {t.n_instrs} instrs, schedule {t.schedule!r}, "
                    f"load->use {t.load_use_distance:.1f}\n{t.render(limit)}"
                )
        return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------
@dataclass
class LoweringContext:
    """Mutable state threaded through the passes of one lowering."""

    weights: np.ndarray
    ndim: int
    config: OptimizationConfig
    tile_shape: tuple[int, int] | None = None
    engine: object | None = None
    tile_irs: tuple[TileProgram | None, ...] = ()
    tiles: tuple[LoweredTile | None, ...] = ()
    pass_times: list[tuple[str, float]] = field(default_factory=list)


def _pass_decompose(ctx: LoweringContext) -> None:
    """Decomposition + gather-fragment build (constructs the engine)."""
    # engines import this module for their lazy self-lowering hook, so
    # resolve them at call time
    from repro.core._deprecation import suppress_engine_deprecation
    from repro.core.engine1d import LoRAStencil1D
    from repro.core.engine2d import LoRAStencil2D
    from repro.core.engine3d import LoRAStencil3D
    from repro.core.rdg import OUT_TILE

    with suppress_engine_deprecation():
        if ctx.ndim == 1:
            ctx.engine = LoRAStencil1D(ctx.weights, config=ctx.config)
        elif ctx.ndim == 2:
            ctx.engine = LoRAStencil2D(
                ctx.weights,
                config=ctx.config,
                tile_shape=ctx.tile_shape or (OUT_TILE, OUT_TILE),
            )
        else:
            ctx.engine = LoRAStencil3D(ctx.weights, config=ctx.config)


def _pass_build_tile_ir(ctx: LoweringContext) -> None:
    """Emit the canonical (unscheduled) tile program(s)."""
    if ctx.engine is None:
        raise LoweringError("build_tile_ir pass requires a decomposed engine")
    if not ctx.config.use_tensor_cores:
        # CUDA-core fallback: no tensor-core program to build; the sweep
        # driver runs the eager scalar path instead
        ctx.tile_irs = (None,) if ctx.ndim != 3 else tuple(
            None for _ in ctx.engine.planes
        )
        return
    if ctx.ndim == 1:
        ctx.tile_irs = (build_tile_program_1d(ctx.engine),)
    elif ctx.ndim == 2:
        ctx.tile_irs = (build_tile_program(ctx.engine.tile),)
    else:
        ctx.tile_irs = tuple(
            build_tile_program(task.engine.tile) if task.engine is not None
            else None
            for task in ctx.engine.planes
        )


def _pass_schedule(ctx: LoweringContext) -> None:
    """Apply the configured schedule and compute its statistics."""
    fn = get_schedule(ctx.config.schedule)
    tiles: list[LoweredTile | None] = []
    for ir in ctx.tile_irs:
        if ir is None:
            tiles.append(None)
            continue
        program = fn(ir)
        try:
            validate_schedule(program)
        except ValueError as exc:
            raise LoweringError(
                f"schedule {ctx.config.schedule!r} broke a dependence: {exc}"
            ) from exc
        tiles.append(
            LoweredTile(
                program=program,
                schedule=ctx.config.schedule,
                load_use_distance=load_use_distance(program),
            )
        )
    ctx.tiles = tuple(tiles)


def _pass_vectorize(ctx: LoweringContext) -> None:
    """Compile each scheduled program for the vectorized backend.

    Materializes the banded U/V operands as dense matrix-domain arrays
    (once per plan) and attaches the resulting
    :class:`~repro.core.vectorize.VectorProgram` to the lowered tile.
    CUDA-core tiles (``None``) pass through: they have no program on
    either backend.
    """
    ctx.tiles = tuple(
        t if t is None else replace(t, vector=build_vector_program(t.program))
        for t in ctx.tiles
    )


#: The default pipeline: the paper's staging as named passes.
DEFAULT_PASSES: tuple[tuple[str, Callable[[LoweringContext], None]], ...] = (
    ("decompose", _pass_decompose),
    ("build_tile_ir", _pass_build_tile_ir),
    ("schedule", _pass_schedule),
    ("vectorize", _pass_vectorize),
)


class PassPipeline:
    """Runs named lowering passes over a :class:`LoweringContext`.

    Each pass executes under a ``lowering.<name>`` telemetry span and
    appends ``(name, seconds)`` to the context's ``pass_times``, so the
    cost of compilation is attributable stage by stage.  Custom
    pipelines (extra analysis passes, alternative scheduling) are plain
    lists of ``(name, fn)`` pairs.
    """

    def __init__(
        self,
        passes: tuple[tuple[str, Callable[[LoweringContext], None]], ...]
        | None = None,
    ) -> None:
        self.passes = tuple(passes) if passes is not None else DEFAULT_PASSES

    def run(self, ctx: LoweringContext) -> LoweringContext:
        """Execute every pass in order; returns the same context."""
        for name, fn in self.passes:
            start = time.perf_counter()
            with TRACER.span(f"lowering.{name}", category="lowering"):
                fn(ctx)
            ctx.pass_times.append((name, time.perf_counter() - start))
        return ctx


def lower(
    weights: np.ndarray,
    ndim: int,
    config: OptimizationConfig | None = None,
    tile_shape: tuple[int, int] | None = None,
    pipeline: PassPipeline | None = None,
) -> tuple[object, LoweredProgram]:
    """Run the full pipeline; returns ``(engine, LoweredProgram)``.

    This is what :func:`repro.runtime.plan.build_plan` calls on a plan
    cache miss.  The returned engine has the scheduled programs bound
    (via :meth:`~repro.core.engine2d.LoRAStencil2D.bind_lowered`), so
    its simulated sweeps execute through the lowered artifact.
    """
    cfg = config or OptimizationConfig()
    if cfg.use_tensor_cores:
        get_schedule(cfg.schedule)  # fail fast on unknown schedules
    ctx = LoweringContext(
        weights=np.asarray(weights, dtype=np.float64),
        ndim=ndim,
        config=cfg,
        tile_shape=tile_shape,
    )
    (pipeline or PassPipeline()).run(ctx)
    lowered = LoweredProgram(
        ndim=ndim,
        schedule=cfg.schedule,
        tiles=ctx.tiles,
        pass_times=tuple(ctx.pass_times),
    )
    _bind(ctx.engine, lowered)
    return ctx.engine, lowered


def _bind(engine, lowered: LoweredProgram) -> None:
    """Attach the scheduled tile programs to the engine(s)."""
    if lowered.ndim == 3:
        for task, tile in zip(engine.planes, lowered.tiles):
            if task.engine is not None and tile is not None:
                task.engine.bind_lowered(tile)
    else:
        engine.bind_lowered(lowered.tile)


def checksum_footprint(lowered: LoweredProgram | LoweredTile) -> dict:
    """Modeled hardware cost of carrying ABFT checksum rows (Eq. 12 chain).

    On real ``m8n8k4`` tensor cores the Huang–Abraham encoding rides as
    one extra accumulator row inside each MMA of the rank-1 chain: the
    checksum row ``e·U_k`` joins the 8-row A fragment, so each ``mma``/
    ``mma2`` instruction computes ``M + 1`` output rows instead of
    ``M``.  This helper prices that from the scheduled program alone —
    no execution — for the chaos CLI, the overhead benchmark and
    ``docs/robustness.md``:

    * ``mma_instrs`` — MMAs in the chain (``mma`` + ``mma2`` opcodes);
    * ``baseline_rows`` / ``checksum_rows`` — accumulator rows computed
      without / additionally-with the encoding;
    * ``overhead_fraction`` — ``checksum_rows / baseline_rows``, the
      classic ``1/M`` ABFT bound (0.125 for the FP64 ``m8n8k4`` shape).

    The FP64 *simulator* instead verifies by oracle replay at
    tolerance 0 (see :mod:`repro.faults.abft`); this footprint is the
    cost the hardware formulation would add.
    """
    from repro.tcu.layouts import FP64_FRAGMENT_SHAPES, FragmentKind

    tiles: tuple[LoweredTile | None, ...]
    if isinstance(lowered, LoweredTile):
        tiles = (lowered,)
    else:
        tiles = lowered.tiles
    m_rows = FP64_FRAGMENT_SHAPES[FragmentKind.ACC][0]
    n_mma = 0
    for t in tiles:
        if t is None:
            continue
        counts = t.op_counts()
        n_mma += counts.get("mma", 0) + counts.get("mma2", 0)
    baseline = n_mma * m_rows
    return {
        "mma_instrs": n_mma,
        "mma_rows": m_rows,
        "baseline_rows": baseline,
        "checksum_rows": n_mma,
        "overhead_fraction": (n_mma / baseline) if baseline else 0.0,
    }


def lower_engine(engine) -> LoweredTile | None:
    """Build + schedule the program for one already-built 1D/2D engine.

    The lazy self-lowering hook behind the (deprecated) direct engine
    constructors: ``build_tile_ir`` and ``schedule`` without the
    ``decompose`` pass, keeping the lowered program the single
    tensor-core execution path even off the plan route.  Returns
    ``None`` for CUDA-core configurations (no program to build).
    """
    if not engine.config.use_tensor_cores:
        return None
    fn = get_schedule(engine.config.schedule)
    tile = getattr(engine, "tile", None)
    ir = (
        build_tile_program(tile)
        if tile is not None
        else build_tile_program_1d(engine)
    )
    program = fn(ir)
    try:
        validate_schedule(program)
    except ValueError as exc:
        raise LoweringError(
            f"schedule {engine.config.schedule!r} broke a dependence: {exc}"
        ) from exc
    return LoweredTile(
        program=program,
        schedule=engine.config.schedule,
        load_use_distance=load_use_distance(program),
        vector=build_vector_program(program),
    )
