"""Warp-level WMMA operations.

:class:`Warp` exposes the operations a CUDA warp has at its disposal in
the paper's implementation:

* ``load_matrix_sync`` / ``store_matrix_sync`` — fragment traffic between
  shared memory and the register file;
* ``mma_sync`` — one FP64 ``m8n8k4`` tensor-core instruction;
* ``split_accumulator_naive`` — the *direct* partition of an 8x8
  accumulator into two 8x4 left operands, which requires inter-thread
  shuffles (counted through a generic transfer planner);
* ``split_accumulator_bvs`` — Butterfly Vector Swapping: reading the R0
  registers as the even-column fragment and the R1 registers as the
  odd-column fragment.  By the PTX ownership maps this is a pure
  register *reinterpretation*; the method performs no inter-thread data
  movement and increments no shuffle counter, which is exactly the
  paper's claim in Section III-D.
"""

from __future__ import annotations

import numpy as np

from repro.tcu.counters import EventCounters
from repro.tcu.fragment import Fragment
from repro.tcu.trace import maybe_trace
from repro.tcu.layouts import WARP_SIZE, FragmentKind, owner_of
from repro.tcu.memory import GlobalMemory, SharedMemory

__all__ = ["Warp", "BVS_EVEN_ODD_ORDER"]

#: Column order produced by the BVS accumulator split: the even columns
#: (R0 registers) followed by the odd columns (R1 registers).  The rows of
#: the right-hand operand must be permuted identically (Eq. 17).
BVS_EVEN_ODD_ORDER: tuple[int, ...] = (0, 2, 4, 6, 1, 3, 5, 7)


class Warp:
    """A warp of 32 threads driving one tensor core.

    ``injector`` (a :class:`repro.faults.injector.FaultInjector`) opts
    the warp into deterministic fault injection: each ``mma_sync``
    offers its A/B/C operands to the injector before the tensor core
    fires.  ``None`` (the default) costs one attribute check per MMA.
    """

    def __init__(self, counters: EventCounters, injector=None) -> None:
        self.counters = counters
        self.injector = injector

    # ------------------------------------------------------------------
    # fragment traffic
    # ------------------------------------------------------------------
    def load_matrix_sync(
        self,
        kind: FragmentKind,
        shared: SharedMemory,
        row: int,
        col: int,
    ) -> Fragment:
        """Load one fragment from shared memory (one load request)."""
        from repro.tcu.layouts import FP64_FRAGMENT_SHAPES

        shape = FP64_FRAGMENT_SHAPES[kind]
        tile = shared.read_fragment(row, col, shape)
        maybe_trace(self.counters, "load_matrix", f"{kind.name}@({row},{col})")
        return Fragment.from_matrix(kind, tile)

    def fill_fragment(self, kind: FragmentKind, matrix: np.ndarray) -> Fragment:
        """Build a fragment from register-resident values (no memory event).

        Used for weight fragments that a block materializes once and
        reuses for its whole lifetime.
        """
        return Fragment.from_matrix(kind, matrix)

    def store_matrix_sync(
        self,
        frag: Fragment,
        shared: SharedMemory,
        row: int,
        col: int,
    ) -> None:
        """Store an accumulator tile back to shared memory."""
        shared.write_tile(row, col, frag.to_matrix(), via_registers=False)

    def store_matrix_global(
        self,
        frag: Fragment,
        gmem: GlobalMemory,
        index: tuple[slice, ...],
    ) -> None:
        """Store an accumulator tile directly to global memory."""
        gmem.write(index, frag.to_matrix())

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def mma_sync(
        self,
        a: Fragment,
        b: Fragment,
        acc: Fragment | None = None,
    ) -> Fragment:
        """``D = A @ B + C`` on the tensor core (one MMA instruction)."""
        if a.kind is not FragmentKind.A:
            raise TypeError(f"left operand must be an A fragment, got {a.kind}")
        if b.kind is not FragmentKind.B:
            raise TypeError(f"right operand must be a B fragment, got {b.kind}")
        if acc is not None and acc.kind is not FragmentKind.ACC:
            raise TypeError(f"accumulator must be an ACC fragment, got {acc.kind}")
        if self.injector is not None:
            a, b, acc = self.injector.on_mma(a, b, acc)
        self.counters.mma_ops += 1
        maybe_trace(self.counters, "mma")
        d = a.to_matrix() @ b.to_matrix()
        if acc is not None:
            d = d + acc.to_matrix()
        return Fragment.from_matrix(FragmentKind.ACC, d)

    def cuda_core_axpy(self, out: np.ndarray, alpha: float, x: np.ndarray) -> None:
        """``out += alpha * x`` on the CUDA cores (2 FLOPs per element)."""
        if out.shape != x.shape:
            raise ValueError(f"axpy shape mismatch: {out.shape} vs {x.shape}")
        maybe_trace(self.counters, "cuda_axpy")
        out += alpha * x
        self.counters.cuda_core_flops += 2 * out.size

    # ------------------------------------------------------------------
    # accumulator splitting (the MCM bottleneck BVS removes)
    # ------------------------------------------------------------------
    def split_accumulator_bvs(self, acc: Fragment) -> tuple[Fragment, Fragment]:
        """Split an accumulator into (even-column, odd-column) A fragments.

        Thread ``t`` holds ``C[t//4][2*(t%4)]`` in R0; an A fragment
        assigns slot ``(t//4, t%4)`` to thread ``t``.  Hence the R0
        register file *is* the fragment holding columns ``0,2,4,6`` and
        R1 the one holding columns ``1,3,5,7`` — no thread exchanges any
        data, so no shuffle is counted.
        """
        if acc.kind is not FragmentKind.ACC:
            raise TypeError(f"expected accumulator fragment, got {acc.kind}")
        maybe_trace(self.counters, "bvs_split")
        even = Fragment(FragmentKind.A, acc.registers[:, 0:1].copy())
        odd = Fragment(FragmentKind.A, acc.registers[:, 1:2].copy())
        return even, odd

    def split_accumulator_naive(self, acc: Fragment) -> tuple[Fragment, Fragment]:
        """Split an accumulator into (columns 0..3, columns 4..7).

        This is the mathematically obvious partition of ``C`` into two
        left operands; it forces inter-thread shuffles, which are counted
        through the transfer planner.
        """
        if acc.kind is not FragmentKind.ACC:
            raise TypeError(f"expected accumulator fragment, got {acc.kind}")
        maybe_trace(self.counters, "naive_split")
        mat = acc.to_matrix()
        left = self._shuffle_into_a(acc, col_offset=0)
        right = self._shuffle_into_a(acc, col_offset=4)
        # functional result identical to a direct slice
        assert np.array_equal(left.to_matrix(), mat[:, 0:4])
        assert np.array_equal(right.to_matrix(), mat[:, 4:8])
        return left, right

    def _shuffle_into_a(self, acc: Fragment, col_offset: int) -> Fragment:
        """Move accumulator columns ``col_offset..col_offset+3`` into an A
        fragment, pricing every cross-thread transfer.

        Transfers are grouped into warp-wide ``__shfl_sync`` instructions:
        all moves that share a source register and a lane delta execute as
        one instruction.
        """
        frag = Fragment(FragmentKind.A)
        groups: set[tuple[int, int]] = set()
        for i in range(8):
            for j in range(4):
                src_t, src_r = owner_of(FragmentKind.ACC, i, col_offset + j)
                dst_t, dst_r = owner_of(FragmentKind.A, i, j)
                frag.registers[dst_t, dst_r] = acc.registers[src_t, src_r]
                if src_t != dst_t:
                    delta = (dst_t - src_t) % WARP_SIZE
                    groups.add((src_r, delta))
                    self.counters.register_moves += 1
        self.counters.shuffle_ops += len(groups)
        return frag
