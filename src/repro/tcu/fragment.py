"""Fragments: warp-distributed matrix tiles.

A :class:`Fragment` stores its elements *as the hardware does* — in a
``(32, registers_per_thread)`` per-thread register file — and converts
to/from the dense matrix view through the PTX ownership maps in
:mod:`repro.tcu.layouts`.  Keeping the register file as the primary
representation is what lets the simulator demonstrate (rather than merely
assert) that Butterfly Vector Swapping moves no data between threads.
"""

from __future__ import annotations

import numpy as np

from repro.tcu.layouts import (
    FP64_FRAGMENT_SHAPES,
    WARP_SIZE,
    FragmentKind,
    owner_of,
    registers_per_thread,
    thread_slots,
)

__all__ = ["Fragment"]


def _gather_index(kind: FragmentKind) -> tuple[np.ndarray, np.ndarray]:
    """Precomputed (thread, register) index arrays of fragment shape."""
    rows, cols = FP64_FRAGMENT_SHAPES[kind]
    threads = np.empty((rows, cols), dtype=np.int64)
    regs = np.empty((rows, cols), dtype=np.int64)
    for i in range(rows):
        for j in range(cols):
            t, r = owner_of(kind, i, j)
            threads[i, j] = t
            regs[i, j] = r
    return threads, regs


_INDEX_CACHE: dict[FragmentKind, tuple[np.ndarray, np.ndarray]] = {
    kind: _gather_index(kind) for kind in FragmentKind
}


class Fragment:
    """A warp-distributed FP64 matrix tile.

    Attributes
    ----------
    kind:
        The fragment's role (:class:`FragmentKind`).
    registers:
        ``(32, registers_per_thread(kind))`` float64 register file;
        ``registers[t, r]`` is thread ``t``'s register ``r``.
    """

    __slots__ = ("kind", "registers")

    def __init__(self, kind: FragmentKind, registers: np.ndarray | None = None):
        self.kind = kind
        nregs = registers_per_thread(kind)
        if registers is None:
            registers = np.zeros((WARP_SIZE, nregs), dtype=np.float64)
        else:
            registers = np.asarray(registers, dtype=np.float64)
            if registers.shape != (WARP_SIZE, nregs):
                raise ValueError(
                    f"register file for {kind.name} must be "
                    f"({WARP_SIZE}, {nregs}), got {registers.shape}"
                )
        self.registers = registers

    # -- construction -------------------------------------------------------
    @classmethod
    def from_matrix(cls, kind: FragmentKind, matrix: np.ndarray) -> "Fragment":
        """Distribute a dense matrix into the per-thread register file."""
        matrix = np.asarray(matrix, dtype=np.float64)
        expected = FP64_FRAGMENT_SHAPES[kind]
        if matrix.shape != expected:
            raise ValueError(
                f"{kind.name} fragment expects shape {expected}, got {matrix.shape}"
            )
        frag = cls(kind)
        threads, regs = _INDEX_CACHE[kind]
        frag.registers[threads.ravel(), regs.ravel()] = matrix.ravel()
        return frag

    # -- views ---------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Materialize the dense matrix from the register file."""
        threads, regs = _INDEX_CACHE[self.kind]
        return self.registers[threads, regs].copy()

    @property
    def shape(self) -> tuple[int, int]:
        return FP64_FRAGMENT_SHAPES[self.kind]

    def element(self, row: int, col: int) -> float:
        """One matrix element, read through its owner's register."""
        t, r = owner_of(self.kind, row, col)
        return float(self.registers[t, r])

    def thread_view(self, thread: int) -> list[tuple[tuple[int, int], float]]:
        """The (position, value) pairs held by one thread."""
        return [
            ((i, j), float(self.registers[thread, r]))
            for r, (i, j) in enumerate(thread_slots(self.kind, thread))
        ]

    def copy(self) -> "Fragment":
        """Independent copy of the register file."""
        return Fragment(self.kind, self.registers.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fragment({self.kind.name}, {self.shape[0]}x{self.shape[1]})"
