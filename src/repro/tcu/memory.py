"""Simulated GPU memories with request counting.

Two levels are modelled, matching what the paper measures:

* :class:`GlobalMemory` — DRAM; traffic is counted in bytes.
* :class:`SharedMemory` — per-SM scratchpad; traffic is counted in
  *requests*, the unit Nsight Compute reports in Fig. 10.  A fragment
  load is one request (one warp-wide ``ldmatrix``-style instruction); a
  store counts one request per 32 FP64 elements (one warp-wide store).

Copies from global to shared normally stage through registers; the
``cp.async`` path (Section IV-B) bypasses them, which the simulator
records via ``register_intermediate_bytes`` / ``async_copies`` so the
Fig. 9 breakdown can price the difference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tcu.counters import EventCounters
from repro.tcu.trace import maybe_trace

__all__ = ["SharedMemory", "GlobalMemory", "bank_conflict_cycles"]

_FP64_BYTES = 8
#: FP64 elements moved by one warp-wide shared-memory store instruction.
_STORE_LANES = 32
#: FP64 word-banks of the shared memory (32 x 8B banking model).
_NUM_BANKS = 32


def bank_conflict_cycles(flat_addresses: np.ndarray) -> int:
    """Replay cycles for one warp-wide access to ``flat_addresses``.

    Model: 32 FP64 word-banks, bank = address mod 32.  Lanes reading the
    *same* address broadcast for free; distinct addresses on the same
    bank serialize.  The cost is ``max_bank_degree - 1`` replays.
    """
    flat = np.asarray(flat_addresses).reshape(-1)
    if flat.size == 0:
        return 0
    conflicts = 0
    banks = flat % _NUM_BANKS
    for bank in np.unique(banks):
        distinct = np.unique(flat[banks == bank]).size
        conflicts = max(conflicts, distinct)
    return max(0, int(conflicts) - 1)


class SharedMemory:
    """A 2D shared-memory tile owned by one thread block."""

    def __init__(
        self,
        shape: tuple[int, int],
        counters: EventCounters,
        name: str = "smem",
    ) -> None:
        self.data = np.zeros(shape, dtype=np.float64)
        self.counters = counters
        self.name = name

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return self.data.size * _FP64_BYTES

    # -- loads ----------------------------------------------------------
    def read_fragment(self, row: int, col: int, shape: tuple[int, int]) -> np.ndarray:
        """Warp-level fragment load: one shared-memory load request."""
        r, c = shape
        tile = self.data[row : row + r, col : col + c]
        if tile.shape != shape:
            raise IndexError(
                f"fragment read ({row},{col})+{shape} exceeds {self.name} "
                f"of shape {self.data.shape}"
            )
        self.counters.shared_load_requests += 1
        width = self.data.shape[1]
        addrs = (
            (row + np.arange(r))[:, None] * width + col + np.arange(c)[None, :]
        )
        self.counters.shared_bank_conflicts += bank_conflict_cycles(addrs)
        return tile.copy()

    def read_fragment_strided(
        self,
        start: int,
        shape: tuple[int, int],
        col_stride: int,
    ) -> np.ndarray:
        """Fragment load with a column stride over the flattened buffer.

        Element ``(r, q)`` comes from flat offset ``start + q*col_stride + r``.
        Used by the 1D engine, whose input windows are overlapping
        segments of a flat buffer; like :meth:`read_fragment` it costs a
        single load request.
        """
        rows, cols = shape
        flat = self.data.reshape(-1)
        end = start + (cols - 1) * col_stride + rows
        if start < 0 or end > flat.size:
            raise IndexError(
                f"strided fragment [{start}, {end}) exceeds {self.name} "
                f"of {flat.size} elements"
            )
        idx = start + np.arange(cols)[None, :] * col_stride + np.arange(rows)[:, None]
        self.counters.shared_load_requests += 1
        self.counters.shared_bank_conflicts += bank_conflict_cycles(idx)
        maybe_trace(self.counters, "load_strided", f"@{start}")
        return flat[idx].astype(np.float64)

    def read_fragment_view(
        self,
        start: int,
        shape: tuple[int, int],
        row_stride: int,
        col_stride: int = 1,
    ) -> np.ndarray:
        """Fragment load through an arbitrary 2D view of the flat buffer.

        Element ``(r, c)`` comes from flat offset
        ``start + r*row_stride + c*col_stride``.  Overlapping views of
        compactly stored data are how ConvStencil's stencil2row matrices
        are consumed; each call costs one load request.
        """
        rows, cols = shape
        flat = self.data.reshape(-1)
        last = start + (rows - 1) * row_stride + (cols - 1) * col_stride
        if start < 0 or last >= flat.size:
            raise IndexError(
                f"fragment view [{start}..{last}] exceeds {self.name} "
                f"of {flat.size} elements"
            )
        idx = start + np.arange(rows)[:, None] * row_stride + np.arange(cols)[None, :] * col_stride
        self.counters.shared_load_requests += 1
        self.counters.shared_bank_conflicts += bank_conflict_cycles(idx)
        maybe_trace(self.counters, "load_view", f"@{start}")
        return flat[idx].astype(np.float64)

    def read_scalar_tile(self, row: int, col: int, shape: tuple[int, int]) -> np.ndarray:
        """CUDA-core (non-fragment) tile read: one request per 32 lanes."""
        r, c = shape
        tile = self.data[row : row + r, col : col + c]
        if tile.shape != shape:
            raise IndexError(
                f"tile read ({row},{col})+{shape} exceeds {self.name} "
                f"of shape {self.data.shape}"
            )
        self.counters.shared_load_requests += max(1, math.ceil(tile.size / _STORE_LANES))
        return tile.copy()

    # -- stores ----------------------------------------------------------
    def write_tile(
        self,
        row: int,
        col: int,
        tile: np.ndarray,
        via_registers: bool = True,
    ) -> None:
        """Store a tile; counts one request per 32 FP64 elements.

        ``via_registers=True`` models the classic global->register->shared
        copy; the register staging bytes are recorded so the async-copy
        optimization has something to eliminate.
        """
        tile = np.asarray(tile, dtype=np.float64)
        r, c = tile.shape
        dst = self.data[row : row + r, col : col + c]
        if dst.shape != tile.shape:
            raise IndexError(
                f"tile store ({row},{col})+{tile.shape} exceeds {self.name} "
                f"of shape {self.data.shape}"
            )
        dst[...] = tile
        maybe_trace(self.counters, "smem_store", f"{tile.shape}")
        self.counters.shared_store_requests += max(1, math.ceil(tile.size / _STORE_LANES))
        if via_registers:
            self.counters.register_intermediate_bytes += tile.size * _FP64_BYTES


class GlobalMemory:
    """DRAM-resident array (any dimensionality) with byte counting."""

    def __init__(
        self,
        array: np.ndarray,
        counters: EventCounters,
        name: str = "gmem",
    ) -> None:
        self.data = np.asarray(array, dtype=np.float64)
        self.counters = counters
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def read(self, index: tuple[slice, ...] | slice) -> np.ndarray:
        """Read a DRAM tile (byte-counted)."""
        tile = self.data[index]
        self.counters.global_load_bytes += tile.size * _FP64_BYTES
        return np.array(tile, dtype=np.float64)

    def write(self, index: tuple[slice, ...] | slice, value: np.ndarray) -> None:
        """Write a DRAM tile (byte-counted)."""
        value = np.asarray(value, dtype=np.float64)
        dst = self.data[index]
        if dst.shape != value.shape:
            raise IndexError(
                f"global store shape mismatch: {value.shape} into {dst.shape}"
            )
        self.data[index] = value
        self.counters.global_store_bytes += value.size * _FP64_BYTES

    # -- global -> shared copies ------------------------------------------
    def copy_to_shared(
        self,
        index: tuple[slice, ...] | slice,
        shared: SharedMemory,
        row: int = 0,
        col: int = 0,
        use_async: bool = False,
    ) -> None:
        """Copy a global tile into shared memory.

        With ``use_async`` (the ``cp.async`` instruction) the data skips
        the register file; otherwise the staging bytes are charged.
        """
        tile = self.read(index)
        if tile.ndim != 2:
            raise ValueError(
                f"copy_to_shared requires a 2D tile, got shape {tile.shape}"
            )
        shared.write_tile(row, col, tile, via_registers=not use_async)
        if use_async:
            self.counters.async_copies += 1
