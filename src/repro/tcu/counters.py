"""Hardware event counters.

One :class:`EventCounters` instance plays the role Nsight Compute plays in
the paper's evaluation: every simulated warp operation increments the
matching counter, and the figure harnesses read the totals.

Counting conventions (fixed repository-wide so models and measurements
agree):

* ``shared_load_requests`` — one per warp-level fragment load from shared
  memory (this is the unit of Eq. 12/13 and Fig. 10's "load requests");
* ``shared_store_requests`` — one per 32 FP64 elements stored to shared
  memory (a warp stores 32 lanes per instruction);
* ``shared_bank_conflicts`` — replay cycles caused by warp lanes hitting
  the same shared-memory bank (degree - 1 per access, FP64 word-bank
  model); counted for fidelity, priced at zero by the cost model since
  both evaluated systems pad their layouts to avoid them;
* ``mma_ops`` — one per ``mma_sync`` (each is 2*8*8*4 = 512 FLOPs);
* ``shuffle_ops`` — one per warp-wide ``__shfl_sync`` instruction;
* ``cuda_core_flops`` — scalar FP64 FLOPs executed outside the TCU;
* ``global_load_bytes`` / ``global_store_bytes`` — DRAM traffic;
* ``register_intermediate_bytes`` — bytes staged through registers during
  global->shared copies (zero when ``cp.async`` is used, Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["EventCounters", "MMA_FLOPS"]

#: FLOPs performed by one FP64 m8n8k4 MMA (multiply + add per output lane).
MMA_FLOPS = 2 * 8 * 8 * 4


@dataclass
class EventCounters:
    """Mutable bundle of simulated hardware event counts."""

    mma_ops: int = 0
    shared_load_requests: int = 0
    shared_store_requests: int = 0
    shared_bank_conflicts: int = 0
    shuffle_ops: int = 0
    register_moves: int = 0
    cuda_core_flops: int = 0
    global_load_bytes: int = 0
    global_store_bytes: int = 0
    register_intermediate_bytes: int = 0
    async_copies: int = 0

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "EventCounters") -> "EventCounters":
        if not isinstance(other, EventCounters):
            return NotImplemented
        return EventCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "EventCounters") -> "EventCounters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "EventCounters":
        """Counters multiplied by ``factor`` (used to scale a measured
        tile footprint up to a full problem size).  Values are rounded to
        the nearest integer."""
        return EventCounters(
            **{f.name: round(getattr(self, f.name) * factor) for f in fields(self)}
        )

    # -- derived ----------------------------------------------------------
    @property
    def shared_total_requests(self) -> int:
        """Load + store shared-memory requests (Fig. 10's "total")."""
        return self.shared_load_requests + self.shared_store_requests

    @property
    def tensor_core_flops(self) -> int:
        return self.mma_ops * MMA_FLOPS

    @property
    def total_flops(self) -> int:
        return self.tensor_core_flops + self.cuda_core_flops

    @property
    def dram_bytes(self) -> int:
        return self.global_load_bytes + self.global_store_bytes

    def arithmetic_intensity(self) -> float:
        """FLOP per DRAM byte (Table III's "AI")."""
        if self.dram_bytes == 0:
            return float("inf") if self.total_flops else 0.0
        return self.total_flops / self.dram_bytes

    # -- bookkeeping --------------------------------------------------------
    def snapshot(self) -> "EventCounters":
        """Immutable copy of the current counts."""
        return EventCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def diff(self, earlier: "EventCounters") -> "EventCounters":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return EventCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, int]:
        """Counter values keyed by field name."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
