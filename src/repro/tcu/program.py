"""Tile programs: the RDG computation as a schedulable instruction IR.

:class:`~repro.core.rdg.RDGTileCompute` executes one tile eagerly; this
module expresses the same computation as an explicit instruction list
with named virtual registers, so it can be *re-scheduled* — the software
pipelining a production kernel does to overlap fragment loads with
tensor-core math.

Ops:

* ``load_x dst <- window(kb, wb)`` — one input-fragment load;
* ``mma dst <- (weight U[t][rb][kb], x_reg, acc_reg?)`` — Step-1 MMA;
* ``split (even, odd) <- t_acc`` — the BVS register reinterpretation;
* ``mma2 dst <- (split_reg, weight V[t][wb][ob], acc_reg?)`` — Step-2;
* ``apex out += w * centre`` — the pyramid's CUDA-core epilogue (no
  register destination: it writes the numpy output tile).

1D kernels get the same IR through :func:`build_tile_program_1d` /
:func:`execute_program_1d`: a single ``load_x``/``mma`` accumulator
chain per warp tile (no MCM, no BVS, no pyramid — Section IV-C).

Guarantees proven in the tests: *every* dependence-respecting schedule
executes to the identical numeric result and identical event counts,
and the prefetch scheduler strictly increases load→use distance (the
latency-hiding opportunity) without touching semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.rdg import RDGTileCompute
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.tcu.memory import SharedMemory
from repro.tcu.warp import Warp

__all__ = [
    "Instr",
    "TileProgram",
    "build_tile_program",
    "build_tile_program_1d",
    "execute_program",
    "execute_program_1d",
    "validate_schedule",
    "schedule_prefetch",
    "load_use_distance",
]


@dataclass(frozen=True)
class Instr:
    """One tile-program instruction (SSA-ish: each dst written once)."""

    op: str  # "load_x" | "mma" | "split" | "mma2" | "apex"
    dst: tuple[str, ...]
    srcs: tuple[str, ...]
    meta: dict = field(default_factory=dict, hash=False, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.op} {','.join(self.dst)} <- {','.join(self.srcs) or '-'}"


@dataclass
class TileProgram:
    """An ordered instruction list for one output tile.

    ``tile`` is the weight-holding kernel object the instructions index
    into: an :class:`~repro.core.rdg.RDGTileCompute` for 2D programs, or
    the 1D engine (anything with ``k_rows``/``_u_frags``/``config``) for
    programs built by :func:`build_tile_program_1d`.
    """

    tile: "RDGTileCompute | object"
    instrs: list[Instr]

    def writers(self) -> dict[str, int]:
        """Map register -> writing instruction index (checks SSA)."""
        out = {}
        for i, ins in enumerate(self.instrs):
            for d in ins.dst:
                if d in out:
                    raise ValueError(f"register {d} written twice")
                out[d] = i
        return out


def build_tile_program(tile: RDGTileCompute) -> TileProgram:
    """Emit the canonical (unscheduled) program for ``tile``."""
    if not tile.config.use_tensor_cores:
        raise ValueError("tile programs target the tensor-core configuration")
    instrs: list[Instr] = []
    kb_n, wb_n = tile.k_rows // 4, tile.w_cols // 8
    rb_n, ob_n = tile.out_rows // 8, tile.out_cols // 8

    for kb in range(kb_n):
        for wb in range(wb_n):
            instrs.append(
                Instr(
                    op="load_x",
                    dst=(f"x{kb}_{wb}",),
                    srcs=(),
                    meta={"kb": kb, "wb": wb},
                )
            )

    n_terms = len(tile.decomposition.matrix_terms)
    out_regs: dict[tuple[int, int], str | None] = {
        (rb, ob): None for rb in range(rb_n) for ob in range(ob_n)
    }
    for ti in range(n_terms):
        for rb in range(rb_n):
            for wb in range(wb_n):
                acc: str | None = None
                for kb in range(kb_n):
                    dst = f"t{ti}_{rb}_{wb}_{kb}"
                    instrs.append(
                        Instr(
                            op="mma",
                            dst=(dst,),
                            srcs=(f"x{kb}_{wb}",) + ((acc,) if acc else ()),
                            meta={"term": ti, "rb": rb, "kb": kb},
                        )
                    )
                    acc = dst
                even, odd = f"e{ti}_{rb}_{wb}", f"o{ti}_{rb}_{wb}"
                instrs.append(
                    Instr(
                        op="split",
                        dst=(even, odd),
                        srcs=(acc,),
                        meta={"term": ti},
                    )
                )
                for ob in range(ob_n):
                    for half, src in (("lo", even), ("hi", odd)):
                        prev = out_regs[(rb, ob)]
                        dst = f"acc{ti}_{rb}_{wb}_{ob}_{half}"
                        instrs.append(
                            Instr(
                                op="mma2",
                                dst=(dst,),
                                srcs=(src,) + ((prev,) if prev else ()),
                                meta={
                                    "term": ti,
                                    "rb": rb,
                                    "wb": wb,
                                    "ob": ob,
                                    "half": half,
                                },
                            )
                        )
                        out_regs[(rb, ob)] = dst
    for si in range(len(tile.decomposition.scalar_terms)):
        # the apex writes the numpy output tile, not a register: an
        # empty dst keeps the SSA ``writers()`` check honest
        instrs.append(
            Instr(
                op="apex",
                dst=(),
                srcs=tuple(r for r in out_regs.values() if r),
                meta={"scalar": si},
            )
        )
    program = TileProgram(tile=tile, instrs=instrs)
    program.writers()  # sanity: SSA property
    return program


def validate_schedule(program: TileProgram) -> None:
    """Raise if any instruction reads a register written later."""
    written: set[str] = set()
    for ins in program.instrs:
        for s in ins.srcs:
            if s not in written:
                raise ValueError(
                    f"{ins!r} reads {s!r} before it is written"
                )
        written.update(ins.dst)


def schedule_prefetch(program: TileProgram) -> TileProgram:
    """Hoist all ``load_x`` instructions to the front (prefetching) and
    keep everything else in order — the canonical latency-hiding
    schedule, still dependence-valid by construction."""
    loads = [i for i in program.instrs if i.op == "load_x"]
    rest = [i for i in program.instrs if i.op != "load_x"]
    out = TileProgram(tile=program.tile, instrs=loads + rest)
    validate_schedule(out)
    return out


def load_use_distance(program: TileProgram) -> float:
    """Mean instruction distance between each load and its first use —
    the slack available for hiding shared-memory latency."""
    writers = {d: i for i, ins in enumerate(program.instrs) for d in ins.dst}
    first_use: dict[str, int] = {}
    for i, ins in enumerate(program.instrs):
        for s in ins.srcs:
            first_use.setdefault(s, i)
    dists = [
        first_use[d] - writers[d]
        for ins in program.instrs
        if ins.op == "load_x"
        for d in ins.dst
        if d in first_use
    ]
    return float(np.mean(dists)) if dists else 0.0


def _run_instrs(program: TileProgram, step, counters, profiler) -> None:
    """Drive ``step`` over the program's instructions.

    The fast path is a bare loop; with a ``profiler`` each instruction
    is bracketed by a wall-clock read and an
    :class:`~repro.tcu.counters.EventCounters` snapshot so its time and
    event delta can be attributed (``profiler.record(ins, ns, delta)``).
    """
    if profiler is None:
        for ins in program.instrs:
            step(ins)
        return
    for ins in program.instrs:
        before = counters.snapshot()
        t0 = time.perf_counter_ns()
        step(ins)
        profiler.record(ins, time.perf_counter_ns() - t0, counters.diff(before))


def execute_program(
    program: TileProgram,
    warp: Warp,
    smem: SharedMemory,
    row: int,
    col: int,
    profiler=None,
) -> np.ndarray:
    """Interpret the program on the simulator; returns the output tile.

    ``profiler`` (see :class:`repro.telemetry.perf.InstrProfiler`) is
    strictly opt-in: when ``None`` the interpreter runs the bare
    dispatch loop with no timing or snapshot overhead.
    """
    validate_schedule(program)
    tile = program.tile
    env: dict[str, Fragment] = {}
    out = np.zeros((tile.out_rows, tile.out_cols), dtype=np.float64)
    out_final: dict[tuple[int, int], Fragment] = {}

    def step(ins: Instr) -> None:
        if ins.op == "load_x":
            kb, wb = ins.meta["kb"], ins.meta["wb"]
            env[ins.dst[0]] = warp.load_matrix_sync(
                FragmentKind.B, smem, row + 4 * kb, col + 8 * wb
            )
        elif ins.op == "mma":
            ti, rb, kb = ins.meta["term"], ins.meta["rb"], ins.meta["kb"]
            u = tile._u_frags[ti][rb][kb]
            x = env[ins.srcs[0]]
            acc = env[ins.srcs[1]] if len(ins.srcs) > 1 else None
            env[ins.dst[0]] = warp.mma_sync(u, x, acc)
        elif ins.op == "split":
            if tile.config.use_bvs:
                even, odd = warp.split_accumulator_bvs(env[ins.srcs[0]])
            else:
                even, odd = warp.split_accumulator_naive(env[ins.srcs[0]])
            env[ins.dst[0]], env[ins.dst[1]] = even, odd
        elif ins.op == "mma2":
            ti, wb, ob = ins.meta["term"], ins.meta["wb"], ins.meta["ob"]
            half = 0 if ins.meta["half"] == "lo" else 1
            v = tile._v_frags[ti][wb][ob][half]
            t = env[ins.srcs[0]]
            acc = env[ins.srcs[1]] if len(ins.srcs) > 1 else None
            result = warp.mma_sync(t, v, acc)
            env[ins.dst[0]] = result
            # track the most recent accumulator per output block
            out_final[(ins.meta["rb"], ob)] = result
        elif ins.op == "apex":
            for (rb, ob), frag in out_final.items():
                out[8 * rb : 8 * rb + 8, 8 * ob : 8 * ob + 8] = frag.to_matrix()
            si = ins.meta["scalar"]
            term = tile.decomposition.scalar_terms[si]
            centre = smem.read_scalar_tile(
                row + tile.radius, col + tile.radius,
                (tile.out_rows, tile.out_cols),
            )
            warp.cuda_core_axpy(out, term.scalar_weight, centre)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown op {ins.op!r}")

    _run_instrs(program, step, warp.counters, profiler)

    if not program.tile.decomposition.scalar_terms:
        for (rb, ob), frag in out_final.items():
            out[8 * rb : 8 * rb + 8, 8 * ob : 8 * ob + 8] = frag.to_matrix()
    return out


# ---------------------------------------------------------------------------
# 1D programs (Section IV-C: single gather, no MCM/BVS/pyramid)
# ---------------------------------------------------------------------------
def build_tile_program_1d(engine) -> TileProgram:
    """Emit the canonical program for one 1D warp tile (64 outputs).

    ``engine`` is a :class:`~repro.core.engine1d.LoRAStencil1D` (or any
    object exposing ``k_rows``, ``_u_frags`` and ``config``).  The 1D
    computation is a single accumulator chain: one strided ``load_x``
    per k-block of the window plus one ``mma`` against the banded ``U``
    fragment, so the only scheduling freedom is load placement.
    """
    if not engine.config.use_tensor_cores:
        raise ValueError("tile programs target the tensor-core configuration")
    instrs: list[Instr] = []
    kb_n = engine.k_rows // 4
    for kb in range(kb_n):
        instrs.append(
            Instr(op="load_x", dst=(f"x{kb}",), srcs=(), meta={"kb": kb})
        )
    acc: str | None = None
    for kb in range(kb_n):
        dst = f"t{kb}"
        instrs.append(
            Instr(
                op="mma",
                dst=(dst,),
                srcs=(f"x{kb}",) + ((acc,) if acc else ()),
                meta={"kb": kb, "final": kb == kb_n - 1},
            )
        )
        acc = dst
    program = TileProgram(tile=engine, instrs=instrs)
    program.writers()  # sanity: SSA property
    return program


def execute_program_1d(
    program: TileProgram,
    warp: Warp,
    smem: SharedMemory,
    base: int,
    profiler=None,
) -> np.ndarray:
    """Interpret a 1D program; returns the 8x8 accumulator tile.

    ``base`` is the tile's offset into the block's flat shared buffer
    (element ``(r, q)`` of k-block ``kb`` reads flat offset
    ``base + 4*kb + 8*q + r``, the 8-strided window layout of the 1D
    engine).
    """
    validate_schedule(program)
    engine = program.tile
    env: dict[str, Fragment] = {}
    result: Fragment | None = None

    def step(ins: Instr) -> None:
        nonlocal result
        if ins.op == "load_x":
            kb = ins.meta["kb"]
            x_tile = smem.read_fragment_strided(
                base + 4 * kb, (4, 8), col_stride=8
            )
            env[ins.dst[0]] = Fragment.from_matrix(FragmentKind.B, x_tile)
        elif ins.op == "mma":
            x = env[ins.srcs[0]]
            acc = env[ins.srcs[1]] if len(ins.srcs) > 1 else None
            frag = warp.mma_sync(engine._u_frags[ins.meta["kb"]], x, acc)
            env[ins.dst[0]] = frag
            if ins.meta.get("final"):
                result = frag
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown 1D op {ins.op!r}")

    _run_instrs(program, step, warp.counters, profiler)
    if result is None:
        raise ValueError("1D program has no final mma instruction")
    return result.to_matrix()
