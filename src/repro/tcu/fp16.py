"""FP16 tensor-core arithmetic (the TCStencil data path).

TCStencil (ICS'22) predates FP64 tensor cores and runs on the FP16
``m16n16k16`` MMA: operands are rounded to half precision, products are
accumulated in FP32.  This module models exactly that numeric pipeline
so the repository can quantify the accuracy gap the paper cites as a
core limitation of TCStencil ("limited to FP16 precision", Section VI).

Only the *numerics* are modelled here — FP16 performance accounting
lives in :class:`repro.baselines.tcstencil.TCStencilMethod`'s analytic
footprint (Section V-A's /4 convention).
"""

from __future__ import annotations

import numpy as np

__all__ = ["FP16_TILE", "fp16_mma", "fp16_matmul", "quantize_fp16"]

#: edge of the FP16 fragment (m = n = k = 16)
FP16_TILE = 16


def quantize_fp16(x: np.ndarray) -> np.ndarray:
    """Round to IEEE half precision (and back to float64 for compute).

    Values beyond the FP16 range saturate to infinity, exactly as the
    hardware cast does (the overflow is intentional, not an error).
    """
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float16).astype(np.float64)


def fp16_mma(
    a: np.ndarray,
    b: np.ndarray,
    acc: np.ndarray | None = None,
) -> np.ndarray:
    """One ``m16n16k16`` MMA: FP16 operands, FP32 accumulation.

    ``a`` and ``b`` are rounded to half precision; each product term is
    exact in FP32 (half x half fits), and the accumulation is performed
    in single precision — the documented behaviour of the V100/A100
    FP16 tensor core with FP32 accumulators.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (FP16_TILE, FP16_TILE) or b.shape != (FP16_TILE, FP16_TILE):
        raise ValueError(
            f"fp16_mma expects {FP16_TILE}x{FP16_TILE} operands, got "
            f"{a.shape} x {b.shape}"
        )
    with np.errstate(over="ignore"):
        prod = (
            np.asarray(a, dtype=np.float16).astype(np.float32)
            @ np.asarray(b, dtype=np.float16).astype(np.float32)
        )
    if acc is not None:
        prod = (prod.astype(np.float32) + np.asarray(acc, dtype=np.float32))
    return prod.astype(np.float32)


def fp16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Tiled FP16 GEMM: ``a @ b`` through 16x16x16 MMAs.

    Shapes must be multiples of 16.  Returns the FP32 accumulator
    matrix (as float64 for downstream convenience, values FP32-exact).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if m % FP16_TILE or n % FP16_TILE or k % FP16_TILE:
        raise ValueError(
            f"shapes must be multiples of {FP16_TILE}, got {a.shape} x {b.shape}"
        )
    out = np.zeros((m, n), dtype=np.float32)
    for i in range(0, m, FP16_TILE):
        for j in range(0, n, FP16_TILE):
            acc = np.zeros((FP16_TILE, FP16_TILE), dtype=np.float32)
            for p in range(0, k, FP16_TILE):
                acc = fp16_mma(
                    a[i : i + FP16_TILE, p : p + FP16_TILE],
                    b[p : p + FP16_TILE, j : j + FP16_TILE],
                    acc,
                )
            out[i : i + FP16_TILE, j : j + FP16_TILE] = acc
    return out.astype(np.float64)
