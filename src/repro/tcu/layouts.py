"""FP64 ``m8n8k4`` fragment layouts (per-thread register ownership).

On the A100 the FP64 tensor-core MMA is a warp-wide instruction over

* fragment **A** — the 8x4 left operand, one element per thread,
* fragment **B** — the 4x8 right operand, one element per thread,
* fragment **ACC** — the 8x8 accumulator, two elements per thread
  (registers R0 and R1).

The ownership functions below reproduce the PTX layout the paper draws in
Fig. 6(a):

* ``A[i][j]``   is held by thread ``4*i + j``;
* ``B[i][j]``   is held by thread ``4*j + i``;
* ``C[i][j]``   is held by thread ``4*i + j//2`` in register ``j % 2`` —
  i.e. thread T0 holds the two *consecutive* elements ``C[0][0], C[0][1]``.

This last fact is the entire foundation of Butterfly Vector Swapping: the
R0 registers of a warp, read across threads, form exactly the even
columns ``{0,2,4,6}`` of the accumulator *already laid out like a
fragment A*, and the R1 registers form the odd columns.
"""

from __future__ import annotations

import enum

__all__ = [
    "FragmentKind",
    "FP64_FRAGMENT_SHAPES",
    "WARP_SIZE",
    "owner_of",
    "thread_slots",
    "registers_per_thread",
]

#: Threads per warp.
WARP_SIZE = 32


class FragmentKind(enum.Enum):
    """Role of a fragment in ``D = A @ B + C``."""

    A = "matrix_a"
    B = "matrix_b"
    ACC = "accumulator"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: (rows, cols) of each FP64 fragment kind.
FP64_FRAGMENT_SHAPES: dict[FragmentKind, tuple[int, int]] = {
    FragmentKind.A: (8, 4),
    FragmentKind.B: (4, 8),
    FragmentKind.ACC: (8, 8),
}


def registers_per_thread(kind: FragmentKind) -> int:
    """How many FP64 registers each thread dedicates to ``kind``."""
    rows, cols = FP64_FRAGMENT_SHAPES[kind]
    return (rows * cols) // WARP_SIZE


def owner_of(kind: FragmentKind, row: int, col: int) -> tuple[int, int]:
    """(thread, register) owning element ``(row, col)`` of a fragment."""
    rows, cols = FP64_FRAGMENT_SHAPES[kind]
    if not (0 <= row < rows and 0 <= col < cols):
        raise IndexError(
            f"({row}, {col}) outside {kind.name} fragment of shape {rows}x{cols}"
        )
    if kind is FragmentKind.A:
        return 4 * row + col, 0
    if kind is FragmentKind.B:
        return 4 * col + row, 0
    # accumulator: two consecutive columns per thread
    return 4 * row + col // 2, col % 2


def thread_slots(kind: FragmentKind, thread: int) -> list[tuple[int, int]]:
    """Fragment elements ``(row, col)`` held by ``thread``, register order."""
    if not 0 <= thread < WARP_SIZE:
        raise IndexError(f"thread {thread} outside warp of {WARP_SIZE}")
    if kind is FragmentKind.A:
        return [(thread // 4, thread % 4)]
    if kind is FragmentKind.B:
        return [(thread % 4, thread // 4)]
    row, pair = thread // 4, thread % 4
    return [(row, 2 * pair), (row, 2 * pair + 1)]
