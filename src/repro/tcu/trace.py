"""Execution tracing for the TCU simulator.

A :class:`TraceRecorder` attached to an
:class:`~repro.tcu.counters.EventCounters` ledger records every warp
operation in order, so tests (and humans) can verify *scheduling*
properties the counters alone cannot express — e.g. that a tile's input
fragments are loaded before any MMA touches them, or that BVS splits
sit between the two gather phases.

Tracing is opt-in and zero-cost when disabled: the hot paths call
:func:`maybe_trace`, which is a no-op unless a recorder is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tcu.counters import EventCounters

__all__ = ["TraceEvent", "TraceRecorder", "install", "uninstall", "maybe_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded warp-level operation."""

    index: int
    op: str
    detail: str = ""


@dataclass
class TraceRecorder:
    """Ordered log of simulator operations."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, op: str, detail: str = "") -> None:
        """Append one event."""
        self.events.append(TraceEvent(index=len(self.events), op=op, detail=detail))

    # -- queries -----------------------------------------------------------
    def ops(self) -> list[str]:
        """The op names in execution order."""
        return [e.op for e in self.events]

    def count(self, op: str) -> int:
        """How many times ``op`` was recorded."""
        return sum(1 for e in self.events if e.op == op)

    def first_index(self, op: str) -> int:
        """Index of the first ``op`` event (ValueError if absent)."""
        for e in self.events:
            if e.op == op:
                return e.index
        raise ValueError(f"no {op!r} event recorded")

    def last_index(self, op: str) -> int:
        """Index of the last ``op`` event (ValueError if absent)."""
        idx = -1
        for e in self.events:
            if e.op == op:
                idx = e.index
        if idx < 0:
            raise ValueError(f"no {op!r} event recorded")
        return idx

    def render(self, limit: int = 50) -> str:
        """Human-readable listing of the first ``limit`` events."""
        lines = [f"{e.index:>6}  {e.op:<16} {e.detail}" for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more")
        return "\n".join(lines)


#: recorder registry keyed by the id of the counters object
_RECORDERS: dict[int, TraceRecorder] = {}


def install(counters: EventCounters) -> TraceRecorder:
    """Attach (and return) a recorder for operations on ``counters``."""
    recorder = TraceRecorder()
    _RECORDERS[id(counters)] = recorder
    return recorder


def uninstall(counters: EventCounters) -> None:
    """Detach the recorder (subsequent operations are not recorded)."""
    _RECORDERS.pop(id(counters), None)


def maybe_trace(counters: EventCounters, op: str, detail: str = "") -> None:
    """Record ``op`` if a recorder is installed for ``counters``."""
    recorder = _RECORDERS.get(id(counters))
    if recorder is not None:
        recorder.record(op, detail)
