"""Execution tracing for the TCU simulator.

A :class:`TraceRecorder` attached to an
:class:`~repro.tcu.counters.EventCounters` ledger records every warp
operation in order, so tests (and humans) can verify *scheduling*
properties the counters alone cannot express — e.g. that a tile's input
fragments are loaded before any MMA touches them, or that BVS splits
sit between the two gather phases.

Tracing is opt-in and zero-cost when disabled: the hot paths call
:func:`maybe_trace`, which is a no-op unless a recorder is installed.

Long sweeps record millions of warp ops; an unbounded recorder would
grow without limit.  Pass ``max_events`` to run the recorder as a ring
buffer that keeps only the most recent events, counting what it sheds
in :attr:`TraceRecorder.dropped` — :attr:`TraceRecorder.total` always
reflects every event ever recorded, and event ``index`` values stay
global (the first retained event of a saturated ring has
``index == dropped``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.tcu.counters import EventCounters

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "install",
    "uninstall",
    "maybe_trace",
    "recorder_stats",
]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded warp-level operation."""

    index: int
    op: str
    detail: str = ""


class TraceRecorder:
    """Ordered log of simulator operations (optionally ring-buffered).

    ``max_events=None`` (the default) keeps everything, preserving the
    original unbounded behaviour; ``max_events=n`` keeps the *last* n
    events and counts older ones in :attr:`dropped`.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self._events: deque[TraceEvent] = deque(maxlen=max_events)
        self.total = 0

    def record(self, op: str, detail: str = "") -> None:
        """Append one event (evicting the oldest when the ring is full)."""
        self._events.append(TraceEvent(index=self.total, op=op, detail=detail))
        self.total += 1

    # -- state -------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """How many events the ring buffer has shed (0 when unbounded)."""
        return self.total - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- queries -----------------------------------------------------------
    def ops(self) -> list[str]:
        """The retained op names in execution order."""
        return [e.op for e in self._events]

    def count(self, op: str) -> int:
        """How many retained events match ``op``."""
        return sum(1 for e in self._events if e.op == op)

    def first_index(self, op: str) -> int:
        """Global index of the first retained ``op`` event (ValueError if
        absent)."""
        for e in self._events:
            if e.op == op:
                return e.index
        raise ValueError(f"no {op!r} event recorded")

    def last_index(self, op: str) -> int:
        """Global index of the last retained ``op`` event (ValueError if
        absent)."""
        idx = -1
        for e in self._events:
            if e.op == op:
                idx = e.index
        if idx < 0:
            raise ValueError(f"no {op!r} event recorded")
        return idx

    def render(self, limit: int = 50) -> str:
        """Human-readable listing of the first ``limit`` retained events."""
        lines = []
        if self.dropped:
            lines.append(f"... {self.dropped} earlier events dropped")
        events = self.events
        lines += [f"{e.index:>6}  {e.op:<16} {e.detail}" for e in events[:limit]]
        if len(events) > limit:
            lines.append(f"... {len(events) - limit} more")
        return "\n".join(lines)


#: recorder registry keyed by the id of the counters object
_RECORDERS: dict[int, TraceRecorder] = {}


def install(
    counters: EventCounters, max_events: int | None = None
) -> TraceRecorder:
    """Attach (and return) a recorder for operations on ``counters``.

    ``max_events`` bounds the recorder to a ring of that many most-
    recent events (see :class:`TraceRecorder`).
    """
    recorder = TraceRecorder(max_events=max_events)
    _RECORDERS[id(counters)] = recorder
    return recorder


def uninstall(counters: EventCounters) -> None:
    """Detach the recorder (subsequent operations are not recorded)."""
    _RECORDERS.pop(id(counters), None)


def maybe_trace(counters: EventCounters, op: str, detail: str = "") -> None:
    """Record ``op`` if a recorder is installed for ``counters``."""
    recorder = _RECORDERS.get(id(counters))
    if recorder is not None:
        recorder.record(op, detail)


def recorder_stats() -> dict[str, int]:
    """Aggregate state of every installed recorder, for the exporters.

    ``max_events`` is the smallest configured ring bound (0 when every
    installed recorder is unbounded, or none is installed).
    """
    recorders = list(_RECORDERS.values())
    bounds = [r.max_events for r in recorders if r.max_events is not None]
    return {
        "recorders": len(recorders),
        "events_total": sum(r.total for r in recorders),
        "events_retained": sum(len(r) for r in recorders),
        "events_dropped": sum(r.dropped for r in recorders),
        "max_events": min(bounds) if bounds else 0,
    }
