"""Device: the top-level simulator handle.

A :class:`Device` ties one :class:`~repro.tcu.counters.EventCounters`
ledger to the memories and warps created from it, and tracks the peak
shared-memory allocation (the quantity the occupancy model in
:mod:`repro.perf.occupancy` consumes — ConvStencil's stencil2row
matrices lose occupancy exactly here).
"""

from __future__ import annotations

import numpy as np

from repro.tcu.counters import EventCounters
from repro.tcu.memory import GlobalMemory, SharedMemory
from repro.tcu.warp import Warp

__all__ = ["Device"]


class Device:
    """One simulated GPU context: counters + memory factories + warps.

    ``injector`` (a :class:`repro.faults.injector.FaultInjector`) arms
    deterministic fault injection on every warp created from this
    device and on the block-sweep staging copies; ``None`` (the
    default) keeps the fast path branch-free beyond one attribute
    check.
    """

    def __init__(self, injector=None) -> None:
        self.counters = EventCounters()
        self.peak_shared_bytes = 0
        self.injector = injector

    def shared(self, shape: tuple[int, int], name: str = "smem") -> SharedMemory:
        """Allocate a shared-memory tile (per thread block)."""
        smem = SharedMemory(shape, self.counters, name=name)
        self.peak_shared_bytes = max(self.peak_shared_bytes, smem.nbytes)
        return smem

    def global_array(self, array: np.ndarray, name: str = "gmem") -> GlobalMemory:
        """Wrap an array as DRAM-resident."""
        return GlobalMemory(array, self.counters, name=name)

    def warp(self) -> Warp:
        """A warp wired to this device's counters (and fault injector)."""
        return Warp(self.counters, injector=self.injector)

    # -- measurement helpers ------------------------------------------------
    def snapshot(self) -> EventCounters:
        """Counter snapshot for later differencing."""
        return self.counters.snapshot()

    def events_since(self, snapshot: EventCounters) -> EventCounters:
        """Events accumulated since ``snapshot`` was taken."""
        return self.counters.diff(snapshot)
