"""Tensor Core Unit (TCU) simulator.

A functional, counter-exact model of the NVIDIA A100's FP64 tensor core
path as the paper uses it:

* ``m8n8k4`` MMA — fragment A is 8x4, fragment B is 4x8, the accumulator
  C/D is 8x8 (Equation 1 with m=8, n=8, k=4);
* the PTX per-thread register ownership of each fragment (Fig. 6a),
  which is what makes Butterfly Vector Swapping shuffle-free;
* shared/global memories whose load/store *requests* are counted the way
  Nsight Compute counts them for Fig. 10;
* warp-level ``load_matrix_sync`` / ``mma_sync`` / ``store_matrix_sync``
  plus costed inter-thread shuffles.

Arithmetic is executed in real FP64 through the per-thread register file,
so any algorithm run on this simulator produces numbers directly
comparable with the reference stencil executors.
"""

from repro.tcu.counters import EventCounters
from repro.tcu.layouts import (
    FP64_FRAGMENT_SHAPES,
    FragmentKind,
    owner_of,
    registers_per_thread,
    thread_slots,
)
from repro.tcu.fragment import Fragment
from repro.tcu.memory import GlobalMemory, SharedMemory
from repro.tcu.warp import Warp
from repro.tcu.device import Device

__all__ = [
    "EventCounters",
    "FragmentKind",
    "FP64_FRAGMENT_SHAPES",
    "owner_of",
    "thread_slots",
    "registers_per_thread",
    "Fragment",
    "SharedMemory",
    "GlobalMemory",
    "Warp",
    "Device",
]
