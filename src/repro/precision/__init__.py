"""Precision analysis: FP64 LoRAStencil vs FP16 TCStencil numerics.

The paper's Section V-A/VI argument against TCStencil is that its
algorithm only exists at FP16.  This package makes that argument
quantitative: a TCStencil-style FP16 stencil pipeline
(:class:`TCStencilFP16`) runs next to the FP64 engines, and
:func:`precision_sweep` measures how its error grows across timesteps —
the extension experiment behind ``benchmarks/bench_precision_fp16.py``.
"""

from repro.precision.tcstencil_fp16 import TCStencilFP16
from repro.precision.analysis import PrecisionPoint, precision_sweep

__all__ = ["TCStencilFP16", "PrecisionPoint", "precision_sweep"]
