"""Error-growth analysis: FP16 pipeline vs FP64 reference over time."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.precision.tcstencil_fp16 import TCStencilFP16
from repro.stencil.grid import Grid
from repro.stencil.weights import StencilWeights

__all__ = ["PrecisionPoint", "precision_sweep"]


@dataclass(frozen=True)
class PrecisionPoint:
    """Error statistics after one number of timesteps."""

    step: int
    max_abs_err: float
    rel_l2_err: float


def precision_sweep(
    weights: StencilWeights,
    grid_shape: tuple[int, int] = (64, 64),
    steps: tuple[int, ...] = (1, 2, 4, 8, 16),
    boundary: str = "periodic",
    seed: int = 0,
) -> list[PrecisionPoint]:
    """Run the FP16 TCStencil-style pipeline next to the FP64 reference
    and record the error after each checkpoint in ``steps``.

    The FP64 trajectory uses the reference executor; the FP16 trajectory
    feeds its own (already rounded) output forward, as a real FP16
    implementation must — so rounding error compounds across timesteps.
    """
    if weights.ndim != 2:
        raise ValueError(f"precision sweep is defined for 2D kernels, got "
                         f"{weights.ndim}D")
    from repro.stencil.reference import reference_apply

    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=grid_shape)
    fp16_engine = TCStencilFP16(weights)

    grid64 = Grid(x0, weights.radius, boundary=boundary)
    grid16 = Grid(x0, weights.radius, boundary=boundary)

    points: list[PrecisionPoint] = []
    done = 0
    for checkpoint in sorted(steps):
        for _ in range(checkpoint - done):
            grid64.step(lambda p: reference_apply(p, weights))
            grid16.step(fp16_engine.apply)
        done = checkpoint
        diff = grid16.interior - grid64.interior
        ref_norm = float(np.linalg.norm(grid64.interior)) or 1.0
        points.append(
            PrecisionPoint(
                step=checkpoint,
                max_abs_err=float(np.abs(diff).max()),
                rel_l2_err=float(np.linalg.norm(diff)) / ref_norm,
            )
        )
    return points
