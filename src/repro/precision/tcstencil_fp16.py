"""A TCStencil-style FP16 stencil pipeline (numerics model).

TCStencil maps a 2D stencil to FP16 ``m16n16k16`` MMAs with one banded
GEMM pass per kernel row: pass ``i`` gathers the horizontal
dependencies of row ``i`` from the vertically shifted input,

    ``out = sum_i  X[i : i + R, :] @ V_i``

with ``V_i`` the Eq. 6-style banded matrix built from ``w[i, :]``.
There is no rank decomposition, so the *dimension residue* is paid as
``2h+1`` full passes over shifted data — and every operand is rounded
to half precision with FP32 accumulation (:mod:`repro.tcu.fp16`).

This class exists for accuracy studies: its output deliberately carries
genuine FP16 rounding error.  Tolerant comparison against the FP64
engines is the point, not a bug.
"""

from __future__ import annotations

import numpy as np

from repro.core.uvbuild import build_v_matrix
from repro.stencil.weights import StencilWeights
from repro.tcu.fp16 import FP16_TILE, fp16_matmul

__all__ = ["TCStencilFP16"]


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to


class TCStencilFP16:
    """FP16 row-pass stencil executor for one 2D kernel."""

    def __init__(self, weights: StencilWeights | np.ndarray) -> None:
        if isinstance(weights, StencilWeights):
            w = weights.as_matrix()
        else:
            w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 2 or w.shape[0] != w.shape[1] or w.shape[0] % 2 != 1:
            raise ValueError(f"weight matrix must be square/odd, got {w.shape}")
        self.weight_matrix = w
        self.radius = (w.shape[0] - 1) // 2

    @property
    def passes(self) -> int:
        """GEMM passes per sweep — one per kernel row (the residue)."""
        return 2 * self.radius + 1

    def apply(self, padded: np.ndarray) -> np.ndarray:
        """FP16-pipeline stencil; returns the interior (float64 holding
        FP32-accumulated values)."""
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 2:
            raise ValueError(f"expected 2D input, got {padded.ndim}D")
        h = self.radius
        rows, cols = padded.shape[0] - 2 * h, padded.shape[1] - 2 * h
        if rows <= 0 or cols <= 0:
            raise ValueError(
                f"padded input {padded.shape} too small for radius {h}"
            )
        rows_p = _round_up(rows, FP16_TILE)
        cols_p = _round_up(cols, FP16_TILE)
        in_cols_p = _round_up(cols_p + 2 * h, FP16_TILE)

        out = np.zeros((rows_p, cols_p), dtype=np.float64)
        x_pad = np.zeros((rows_p + 2 * h, in_cols_p), dtype=np.float64)
        x_pad[: padded.shape[0], : padded.shape[1]] = padded
        for i in range(2 * h + 1):
            v_i = build_v_matrix(
                self.weight_matrix[i], in_cols_p, cols_p, offset=0
            )
            out += fp16_matmul(x_pad[i : i + rows_p, :], v_i)
        return out[:rows, :cols]
