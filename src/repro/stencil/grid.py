"""Grids with halo regions and boundary handling.

All stencil executors in this repository share one calling convention:
they take a *padded* array (interior plus a halo of width ``radius`` on
every side) and return the updated interior.  :class:`Grid` owns that
padding: it stores the interior, materializes the halo through a
:class:`~repro.stencil.boundary.BoundaryCondition` (or its string
shorthand), and double-buffers across temporal iterations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.stencil.boundary import BoundaryCondition, parse_boundary

__all__ = ["Grid"]


class Grid:
    """A d-dimensional grid with a halo of configurable boundary condition.

    Parameters
    ----------
    interior:
        Initial interior values (any dimensionality).
    radius:
        Halo width; must cover the radius of every stencil applied.
    boundary:
        A :class:`~repro.stencil.boundary.BoundaryCondition`, or one of
        the shorthands ``"constant"`` (zero Dirichlet), ``"periodic"``,
        ``"reflect"``, ``"edge"`` (zero-gradient Neumann).
    """

    def __init__(
        self,
        interior: np.ndarray,
        radius: int,
        boundary: str | BoundaryCondition = "constant",
        constant_value: float = 0.0,
    ) -> None:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._interior = np.array(interior, dtype=np.float64, copy=True)
        self.radius = radius
        self.condition = parse_boundary(boundary, constant_value)
        self.boundary = self.condition.name
        self.constant_value = float(constant_value)

    # -- geometry ---------------------------------------------------------
    @property
    def ndim(self) -> int:
        return self._interior.ndim

    @property
    def shape(self) -> tuple[int, ...]:
        return self._interior.shape

    @property
    def interior(self) -> np.ndarray:
        """The interior values (a copy-safe read/write view)."""
        return self._interior

    # -- halo -------------------------------------------------------------
    def padded(self) -> np.ndarray:
        """Interior plus halo, materialized per the boundary condition."""
        if self.radius == 0:
            return self._interior.copy()
        return self.condition.pad(self._interior, self.radius)

    # -- time stepping ------------------------------------------------------
    def step(self, apply_fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """Advance one timestep.

        ``apply_fn`` receives the padded array and must return the new
        interior (shape equal to :attr:`shape`).
        """
        out = apply_fn(self.padded())
        if out.shape != self._interior.shape:
            raise ValueError(
                f"stencil returned shape {out.shape}, expected {self._interior.shape}"
            )
        self._interior = np.asarray(out, dtype=np.float64)

    def run(
        self,
        apply_fn: Callable[[np.ndarray], np.ndarray],
        iterations: int,
    ) -> np.ndarray:
        """Advance ``iterations`` timesteps and return the final interior."""
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        for _ in range(iterations):
            self.step(apply_fn)
        return self._interior

    def copy(self) -> "Grid":
        """Independent copy (same boundary condition and halo width)."""
        return Grid(
            self._interior, self.radius, self.condition, self.constant_value
        )
