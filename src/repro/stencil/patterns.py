"""Stencil dependence patterns.

A *pattern* describes which neighbouring grid points a stencil reads,
independently of the numeric weights attached to them.  The paper's
taxonomy (Section II) distinguishes two shapes:

``star``
    neighbours displaced along a single dimension only (an axis cross),
``box``
    every point of the full ``(2h+1)^d`` hypercube around the centre.

``h`` is the *radius* (also called *order* in the paper).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass


class Shape(enum.Enum):
    """Shape of a stencil's dependence pattern."""

    STAR = "star"
    BOX = "box"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class StencilPattern:
    """A (shape, radius, ndim) stencil dependence pattern.

    Parameters
    ----------
    shape:
        ``Shape.STAR`` or ``Shape.BOX``.
    radius:
        Number of neighbours reached along each axis direction (``h``).
    ndim:
        Spatial dimensionality of the grid (1, 2 or 3 in the paper).
    """

    shape: Shape
    radius: int
    ndim: int

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        if self.ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {self.ndim}")

    @property
    def side(self) -> int:
        """Edge length ``n = 2h + 1`` of the bounding hypercube."""
        return 2 * self.radius + 1

    @property
    def num_points(self) -> int:
        """Number of grid points read per update.

        A box stencil reads the full hypercube; a star stencil reads the
        centre plus ``2h`` points along each of the ``ndim`` axes.  In 1D
        the two shapes coincide.
        """
        if self.shape is Shape.BOX or self.ndim == 1:
            return self.side**self.ndim
        return 2 * self.radius * self.ndim + 1

    def offsets(self) -> list[tuple[int, ...]]:
        """All dependence offsets relative to the centre point.

        Offsets are tuples of length ``ndim`` with components in
        ``[-h, h]``, sorted lexicographically.
        """
        rng = range(-self.radius, self.radius + 1)
        if self.shape is Shape.BOX or self.ndim == 1:
            return list(itertools.product(rng, repeat=self.ndim))
        pts = {(0,) * self.ndim}
        for axis in range(self.ndim):
            for r in rng:
                off = [0] * self.ndim
                off[axis] = r
                pts.add(tuple(off))
        return sorted(pts)

    def mask(self):
        """Boolean occupancy array of shape ``(side,) * ndim``.

        ``mask[idx] == True`` iff the offset ``idx - h`` participates in
        the stencil.
        """
        import numpy as np

        m = np.zeros((self.side,) * self.ndim, dtype=bool)
        h = self.radius
        for off in self.offsets():
            m[tuple(o + h for o in off)] = True
        return m

    def label(self) -> str:
        """Conventional name like ``Box-2D9P`` / ``Star-2D13P``."""
        return f"{self.shape.value.capitalize()}-{self.ndim}D{self.num_points}P"
