"""Boundary conditions as first-class objects.

:class:`~repro.stencil.grid.Grid` accepts either the string shorthands
(``"constant"``, ``"periodic"``, ``"reflect"``, ``"edge"``) or one of
these condition objects, which add the physically named variants:

* :class:`Dirichlet` — fixed boundary value (``constant`` generalized);
* :class:`Periodic` — wrap-around domain;
* :class:`Neumann` — zero normal gradient (equivalent to ``edge``
  replication at first order);
* :class:`Reflect` — mirror about the boundary node.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BoundaryCondition",
    "Dirichlet",
    "Periodic",
    "Neumann",
    "Reflect",
    "parse_boundary",
]


class BoundaryCondition(abc.ABC):
    """Materializes the halo around an interior array."""

    #: string shorthand this condition answers to
    name: str = ""

    @abc.abstractmethod
    def pad(self, interior: np.ndarray, radius: int) -> np.ndarray:
        """Return ``interior`` padded by ``radius`` on every side."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class Dirichlet(BoundaryCondition):
    """Fixed boundary value (default 0: the cold/absorbing boundary)."""

    value: float = 0.0
    name = "constant"

    def pad(self, interior: np.ndarray, radius: int) -> np.ndarray:
        return np.pad(interior, radius, mode="constant", constant_values=self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dirichlet({self.value})"


class Periodic(BoundaryCondition):
    """Wrap-around domain."""

    name = "periodic"

    def pad(self, interior: np.ndarray, radius: int) -> np.ndarray:
        return np.pad(interior, radius, mode="wrap")


class Neumann(BoundaryCondition):
    """Zero normal gradient: replicate the boundary value outward."""

    name = "edge"

    def pad(self, interior: np.ndarray, radius: int) -> np.ndarray:
        return np.pad(interior, radius, mode="edge")


class Reflect(BoundaryCondition):
    """Mirror about the boundary node (symmetric extension)."""

    name = "reflect"

    def pad(self, interior: np.ndarray, radius: int) -> np.ndarray:
        return np.pad(interior, radius, mode="reflect")


_BY_NAME: dict[str, BoundaryCondition] = {
    "constant": Dirichlet(0.0),
    "periodic": Periodic(),
    "edge": Neumann(),
    "reflect": Reflect(),
}


def parse_boundary(
    boundary: str | BoundaryCondition,
    constant_value: float = 0.0,
) -> BoundaryCondition:
    """Normalize a string shorthand or condition object."""
    if isinstance(boundary, BoundaryCondition):
        return boundary
    if boundary == "constant" and constant_value != 0.0:
        return Dirichlet(constant_value)
    if boundary in _BY_NAME:
        return _BY_NAME[boundary]
    raise ValueError(
        f"boundary must be one of {sorted(_BY_NAME)} or a BoundaryCondition, "
        f"got {boundary!r}"
    )
