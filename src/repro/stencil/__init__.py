"""Stencil substrate: patterns, weights, benchmark kernels, grids and
reference executors.

This package is the ground truth the rest of the repository is validated
against.  It knows nothing about Tensor Cores: a stencil here is simply a
dense weight array applied as a sliding weighted sum (cross-correlation)
over a regular grid.
"""

from repro.stencil.patterns import Shape, StencilPattern
from repro.stencil.weights import (
    StencilWeights,
    box_weights,
    compose_weights,
    is_radially_symmetric,
    radially_symmetric_weights,
    star_weights,
)
from repro.stencil.kernels import (
    BenchmarkKernel,
    KERNELS,
    get_kernel,
    list_kernels,
)
from repro.stencil.boundary import (
    BoundaryCondition,
    Dirichlet,
    Neumann,
    Periodic,
    Reflect,
    parse_boundary,
)
from repro.stencil.fields import (
    checkerboard,
    gaussian_pulse,
    hot_square,
    plane_wave,
    random_field,
)
from repro.stencil.grid import Grid
from repro.stencil.reference import (
    reference_apply,
    reference_apply_naive,
    reference_iterate,
)

__all__ = [
    "Shape",
    "StencilPattern",
    "StencilWeights",
    "box_weights",
    "star_weights",
    "radially_symmetric_weights",
    "compose_weights",
    "is_radially_symmetric",
    "BenchmarkKernel",
    "KERNELS",
    "get_kernel",
    "list_kernels",
    "Grid",
    "BoundaryCondition",
    "Dirichlet",
    "Periodic",
    "Neumann",
    "Reflect",
    "parse_boundary",
    "gaussian_pulse",
    "hot_square",
    "plane_wave",
    "random_field",
    "checkerboard",
    "reference_apply",
    "reference_apply_naive",
    "reference_iterate",
]
