"""Benchmark kernel zoo (paper Table II).

Each entry packages the stencil weights together with the problem size,
iteration count and thread-block tile the paper benchmarks with:

=============  ======  ==========================  =============
Kernel         Points  Problem Size                Blocking Size
=============  ======  ==========================  =============
Heat-1D        3       10240000 x 10000            1024
1D5P           5       10240000 x 10000            1024
Heat-2D        5       10240 x 10240 x 10240       32 x 64
Box-2D9P       9       10240 x 10240 x 10240       32 x 64
Star-2D13P     13      10240 x 10240 x 10240       32 x 64
Box-2D49P      49      10240 x 10240 x 10240       32 x 64
Heat-3D        7       1024^3 x 1024               8 x 64
Box-3D27P      27      1024^3 x 1024               8 x 64
=============  ======  ==========================  =============

(The trailing factor of each problem size is the temporal iteration
count.)  Weights use the classic explicit finite-difference coefficients
for the Heat kernels and fixed radially symmetric coefficients for the
box/star kernels, so every kernel in the zoo satisfies the paper's
radial-symmetry assumption (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelNotFoundError
from repro.stencil.patterns import Shape, StencilPattern
from repro.stencil.weights import (
    StencilWeights,
    radially_symmetric_weights,
    star_weights,
)

__all__ = ["BenchmarkKernel", "KERNELS", "get_kernel", "list_kernels"]


@dataclass(frozen=True)
class BenchmarkKernel:
    """One row of Table II: a named stencil plus its benchmark config."""

    name: str
    weights: StencilWeights
    problem_size: tuple[int, ...]
    iterations: int
    blocking: tuple[int, ...]

    @property
    def pattern(self) -> StencilPattern:
        return self.weights.pattern

    @property
    def points(self) -> int:
        return self.pattern.num_points

    @property
    def grid_points(self) -> int:
        n = 1
        for s in self.problem_size:
            n *= s
        return n

    def small_problem(self, scale: int = 64) -> tuple[int, ...]:
        """A shrunken problem size for functional (simulated) runs.

        Keeps the dimensionality and aspect of the benchmark problem but
        caps each axis at ``scale`` points so the pure-Python simulator
        can execute it end to end.
        """
        return tuple(min(s, scale) for s in self.problem_size)


def _heat_1d() -> StencilWeights:
    alpha = 0.125
    vals = np.array([alpha, 1.0 - 2.0 * alpha, alpha])
    return StencilWeights(StencilPattern(Shape.STAR, 1, 1), vals)


def _1d5p() -> StencilWeights:
    # 4th-order central difference diffusion operator.
    a, b = -1.0 / 12.0, 4.0 / 3.0
    c = 1.0 - 2.0 * (a + b) * 0.1
    vals = np.array([a, b, c, b, a]) * 0.1
    vals[2] = 1.0 + 0.1 * (-2.5)
    return StencilWeights(StencilPattern(Shape.STAR, 2, 1), vals)


def _heat_2d() -> StencilWeights:
    alpha = 0.125
    axis = np.array([[alpha, alpha], [alpha, alpha]])
    return star_weights(1, 2, axis_values=axis, center=1.0 - 4.0 * alpha)


def _box_2d9p() -> StencilWeights:
    # Radial classes for a 3x3 box: centre (0,0), edge (0,1), corner (1,1).
    classes = {(0, 0): 0.5, (0, 1): 0.1, (1, 1): 0.025}
    return radially_symmetric_weights(1, 2, class_values=classes)


def _star_2d13p() -> StencilWeights:
    # Order-3 star: weights fall off with distance, symmetric per axis.
    w1, w2, w3 = 0.11, 0.025, 0.004
    axis = np.array([[w3, w2, w1, w1, w2, w3]] * 2)
    center = 1.0 - 4.0 * (w1 + w2 + w3)
    return star_weights(3, 2, axis_values=axis, center=center)


def _box_2d49p() -> StencilWeights:
    # Radius-3 radially symmetric box; weights decay with the radial class.
    classes: dict[tuple[int, ...], float] = {}
    for i in range(4):
        for j in range(i, 4):
            classes[(i, j)] = 0.5 / (1.0 + i * i + j * j)
    return radially_symmetric_weights(3, 2, class_values=classes)


def _heat_3d() -> StencilWeights:
    alpha = 0.08
    axis = np.full((3, 2), alpha)
    return star_weights(1, 3, axis_values=axis, center=1.0 - 6.0 * alpha)


def _box_3d27p() -> StencilWeights:
    classes = {
        (0, 0, 0): 0.4,
        (0, 0, 1): 0.05,
        (0, 1, 1): 0.02,
        (1, 1, 1): 0.00625,
    }
    return radially_symmetric_weights(1, 3, class_values=classes)


def _build_zoo() -> dict[str, BenchmarkKernel]:
    entries = [
        BenchmarkKernel("Heat-1D", _heat_1d(), (10_240_000,), 10_000, (1024,)),
        BenchmarkKernel("1D5P", _1d5p(), (10_240_000,), 10_000, (1024,)),
        BenchmarkKernel("Heat-2D", _heat_2d(), (10_240, 10_240), 10_240, (32, 64)),
        BenchmarkKernel("Box-2D9P", _box_2d9p(), (10_240, 10_240), 10_240, (32, 64)),
        BenchmarkKernel(
            "Star-2D13P", _star_2d13p(), (10_240, 10_240), 10_240, (32, 64)
        ),
        BenchmarkKernel(
            "Box-2D49P", _box_2d49p(), (10_240, 10_240), 10_240, (32, 64)
        ),
        BenchmarkKernel(
            "Heat-3D", _heat_3d(), (1024, 1024, 1024), 1024, (8, 64)
        ),
        BenchmarkKernel(
            "Box-3D27P", _box_3d27p(), (1024, 1024, 1024), 1024, (8, 64)
        ),
    ]
    return {k.name: k for k in entries}


KERNELS: dict[str, BenchmarkKernel] = _build_zoo()


def get_kernel(name: str) -> BenchmarkKernel:
    """Look up a Table II kernel by name (case-insensitive)."""
    for key, kernel in KERNELS.items():
        if key.lower() == name.lower():
            return kernel
    raise KernelNotFoundError(
        f"unknown benchmark kernel {name!r}; available: {sorted(KERNELS)}"
    )


def list_kernels() -> list[str]:
    """Names of all Table II kernels, in paper order."""
    return list(KERNELS)
