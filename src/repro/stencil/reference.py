"""Reference stencil executors.

These are the ground truth every tensorized engine and baseline in the
repository is validated against.  Two implementations are provided:

* :func:`reference_apply_naive` — literal Python loops over Algorithm 1 of
  the paper.  Transparent, slow; used to validate the vectorized version.
* :func:`reference_apply` — NumPy sliding-window sum (vectorized).  Fast
  enough to serve as the oracle for randomized/property tests.

Calling convention (shared repository-wide): the input is *padded* with a
halo of width ``radius`` on each side, and the returned array is the
updated interior, of shape ``input.shape - 2 * radius``.
"""

from __future__ import annotations

import numpy as np

from repro.stencil.weights import StencilWeights

__all__ = ["reference_apply", "reference_apply_naive", "reference_iterate"]


def _check_padded(x: np.ndarray, weights: StencilWeights) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != weights.ndim:
        raise ValueError(
            f"input is {x.ndim}D but weights are {weights.ndim}D"
        )
    h = weights.radius
    for axis, size in enumerate(x.shape):
        if size < 2 * h + 1:
            raise ValueError(
                f"padded input axis {axis} has size {size}, needs >= {2 * h + 1} "
                f"for radius {h}"
            )
    return x


def reference_apply_naive(x: np.ndarray, weights: StencilWeights) -> np.ndarray:
    """Direct transcription of Algorithm 1 (nested loops)."""
    x = _check_padded(x, weights)
    h = weights.radius
    out_shape = tuple(s - 2 * h for s in x.shape)
    out = np.zeros(out_shape, dtype=np.float64)
    w = weights.array
    for idx in np.ndindex(*out_shape):
        acc = 0.0
        for widx in np.ndindex(*w.shape):
            if w[widx] == 0.0:
                continue
            src = tuple(i + j for i, j in zip(idx, widx))
            acc += w[widx] * x[src]
        out[idx] = acc
    return out


def reference_apply(x: np.ndarray, weights: StencilWeights) -> np.ndarray:
    """Vectorized reference: shifted-slice accumulation.

    Accumulates ``w[o] * x[o : o + interior]`` over every nonzero weight
    offset — mathematically the cross-correlation of Algorithm 1, but
    vectorized across the whole interior.
    """
    x = _check_padded(x, weights)
    h = weights.radius
    out_shape = tuple(s - 2 * h for s in x.shape)
    out = np.zeros(out_shape, dtype=np.float64)
    w = weights.array
    for widx in zip(*np.nonzero(w)):
        sl = tuple(
            slice(o, o + n) for o, n in zip(widx, out_shape)
        )
        out += w[widx] * x[sl]
    return out


def reference_iterate(
    x: np.ndarray,
    weights: StencilWeights,
    iterations: int,
    boundary: str = "constant",
) -> np.ndarray:
    """Run ``iterations`` reference timesteps on an (unpadded) interior."""
    from repro.stencil.grid import Grid

    grid = Grid(x, weights.radius, boundary=boundary)
    return grid.run(lambda padded: reference_apply(padded, weights), iterations)
