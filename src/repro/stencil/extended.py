"""Extended kernel zoo (beyond Table II).

The paper's claim "we implement these techniques and generalize them on
various kernels" is exercised here: higher-order and less common shapes
that stress every code path —

* ``1D7P`` — order-3 1D (wider k-dimension in the 1D engine);
* ``Star-2D9P`` — order-2 star (SVD route, rank 3);
* ``Box-2D25P`` — order-2 box (PMA with a 3-level pyramid);
* ``Box-2D81P`` — order-4 box: the radius the paper's Eq. 14 quotes
  4.2x for, and the largest kernel a single 16x16 window serves;
* ``Star-3D13P`` — order-2 3D star (two single-point planes per side);
* ``Box-3D125P`` — order-2 3D box (five 5x5 PMA planes).

These are registered separately from :data:`repro.stencil.kernels.KERNELS`
so the Fig. 8 reproduction stays exactly the paper's Table II line-up.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelNotFoundError
from repro.stencil.kernels import BenchmarkKernel
from repro.stencil.weights import radially_symmetric_weights, star_weights

__all__ = ["EXTENDED_KERNELS", "get_extended_kernel"]


def _1d7p():
    a, b, c = 0.02, 0.1, 0.25
    vals = np.array([a, b, c, 1.0 - 2 * (a + b + c), c, b, a])
    from repro.stencil.patterns import Shape, StencilPattern
    from repro.stencil.weights import StencilWeights

    return StencilWeights(StencilPattern(Shape.STAR, 3, 1), vals)


def _star_2d9p():
    w1, w2 = 0.12, 0.03
    axis = np.array([[w2, w1, w1, w2]] * 2)
    return star_weights(2, 2, axis_values=axis, center=1.0 - 4 * (w1 + w2))


def _box_2d25p():
    classes = {}
    for i in range(3):
        for j in range(i, 3):
            classes[(i, j)] = 0.4 / (1.0 + i * i + j * j)
    return radially_symmetric_weights(2, 2, class_values=classes)


def _box_2d81p():
    classes = {}
    for i in range(5):
        for j in range(i, 5):
            classes[(i, j)] = 0.3 / (1.0 + i * i + j * j)
    return radially_symmetric_weights(4, 2, class_values=classes)


def _star_3d13p():
    w1, w2 = 0.07, 0.015
    axis = np.array([[w2, w1, w1, w2]] * 3)
    return star_weights(2, 3, axis_values=axis, center=1.0 - 6 * (w1 + w2))


def _box_3d125p():
    classes = {}
    for i in range(3):
        for j in range(i, 3):
            for k in range(j, 3):
                classes[(i, j, k)] = 0.2 / (1.0 + i * i + j * j + k * k)
    return radially_symmetric_weights(2, 3, class_values=classes)


def _build() -> dict[str, BenchmarkKernel]:
    entries = [
        BenchmarkKernel("1D7P", _1d7p(), (10_240_000,), 10_000, (1024,)),
        BenchmarkKernel("Star-2D9P", _star_2d9p(), (10_240, 10_240), 10_240, (32, 64)),
        BenchmarkKernel("Box-2D25P", _box_2d25p(), (10_240, 10_240), 10_240, (32, 64)),
        BenchmarkKernel("Box-2D81P", _box_2d81p(), (10_240, 10_240), 10_240, (32, 64)),
        BenchmarkKernel("Star-3D13P", _star_3d13p(), (1024, 1024, 1024), 1024, (8, 64)),
        BenchmarkKernel("Box-3D125P", _box_3d125p(), (1024, 1024, 1024), 1024, (8, 64)),
    ]
    return {k.name: k for k in entries}


EXTENDED_KERNELS: dict[str, BenchmarkKernel] = _build()


def get_extended_kernel(name: str) -> BenchmarkKernel:
    """Look up an extended-zoo kernel by name (case-insensitive)."""
    for key, kernel in EXTENDED_KERNELS.items():
        if key.lower() == name.lower():
            return kernel
    raise KernelNotFoundError(
        f"unknown extended kernel {name!r}; available: {sorted(EXTENDED_KERNELS)}"
    )
