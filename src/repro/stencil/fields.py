"""Initial-condition library.

Reusable field generators for examples, tests and studies: every
generator takes a grid shape and returns a float64 array, so they plug
straight into :class:`~repro.stencil.grid.Grid` or the engines.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_pulse",
    "hot_square",
    "plane_wave",
    "random_field",
    "checkerboard",
]


def _grids(shape: tuple[int, ...]) -> list[np.ndarray]:
    axes = [np.arange(n, dtype=np.float64) for n in shape]
    return list(np.meshgrid(*axes, indexing="ij"))


def gaussian_pulse(
    shape: tuple[int, ...],
    center: tuple[float, ...] | None = None,
    sigma: float | None = None,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Isotropic Gaussian bump (the classic diffusion/wave seed)."""
    if center is None:
        center = tuple((n - 1) / 2.0 for n in shape)
    if len(center) != len(shape):
        raise ValueError(f"center {center} does not match shape {shape}")
    if sigma is None:
        sigma = min(shape) / 8.0
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    r2 = sum((g - c) ** 2 for g, c in zip(_grids(shape), center))
    return amplitude * np.exp(-r2 / (2.0 * sigma * sigma))


def hot_square(
    shape: tuple[int, ...],
    half_width: int | None = None,
    value: float = 100.0,
) -> np.ndarray:
    """A hot hypercube in a cold field (the heat-example initial state)."""
    if half_width is None:
        half_width = min(shape) // 8
    if half_width < 1:
        raise ValueError(f"half_width must be >= 1, got {half_width}")
    out = np.zeros(shape, dtype=np.float64)
    sl = tuple(
        slice(max(0, n // 2 - half_width), min(n, n // 2 + half_width))
        for n in shape
    )
    out[sl] = value
    return out


def plane_wave(
    shape: tuple[int, ...],
    wavevector: tuple[float, ...] | None = None,
    phase: float = 0.0,
) -> np.ndarray:
    """``sin(k . x + phase)`` — eigenfunction-ish probe for dispersion."""
    if wavevector is None:
        wavevector = tuple(2.0 * np.pi / n for n in shape)
    if len(wavevector) != len(shape):
        raise ValueError(f"wavevector {wavevector} does not match {shape}")
    arg = sum(k * g for k, g in zip(wavevector, _grids(shape)))
    return np.sin(arg + phase)


def random_field(
    shape: tuple[int, ...],
    seed: int = 0,
    scale: float = 1.0,
) -> np.ndarray:
    """Deterministic Gaussian noise (the property-test workhorse)."""
    return scale * np.random.default_rng(seed).normal(size=shape)


def checkerboard(shape: tuple[int, ...], period: int = 1) -> np.ndarray:
    """±1 checkerboard — the highest-frequency mode a grid carries,
    maximally punishing for diffusion stencils."""
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    parity = sum(g // period for g in _grids(shape))
    return np.where(parity.astype(np.int64) % 2 == 0, 1.0, -1.0)
