"""Stencil weight containers and generators.

The numeric payload of a stencil is a dense ``(2h+1)^d`` array ``W``;
the stencil update is the cross-correlation

    ``out[i] = sum_o W[o + h] * in[i + o]``    for offsets ``o in [-h, h]^d``.

The paper's low-rank machinery operates on the 2D *weight matrix* (for 2D
stencils) or on the per-plane weight matrices (for 3D stencils, Alg. 2).
This module also provides the *radially symmetric* generators whose rank
bound ``rank(W) <= h + 1`` (Section II-C) powers Pyramidal Matrix
Adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stencil.patterns import Shape, StencilPattern

__all__ = [
    "StencilWeights",
    "box_weights",
    "star_weights",
    "radially_symmetric_weights",
    "compose_weights",
    "is_radially_symmetric",
]


@dataclass(frozen=True)
class StencilWeights:
    """A stencil pattern together with its dense weight array.

    Attributes
    ----------
    pattern:
        The dependence pattern the weights were built for.
    array:
        Dense ``(2h+1,)*ndim`` float64 array.  Points outside the pattern
        (star stencils) carry exact zeros.
    """

    pattern: StencilPattern
    array: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.array, dtype=np.float64)
        expected = (self.pattern.side,) * self.pattern.ndim
        if arr.shape != expected:
            raise ValueError(
                f"weight array shape {arr.shape} does not match pattern "
                f"{self.pattern.label()} (expected {expected})"
            )
        object.__setattr__(self, "array", arr)

    # -- basic geometry -------------------------------------------------
    @property
    def radius(self) -> int:
        return self.pattern.radius

    @property
    def ndim(self) -> int:
        return self.pattern.ndim

    @property
    def side(self) -> int:
        return self.pattern.side

    # -- views ----------------------------------------------------------
    def as_matrix(self) -> np.ndarray:
        """The 2D weight matrix ``W`` (only valid for 2D stencils)."""
        if self.ndim != 2:
            raise ValueError(f"as_matrix() requires a 2D stencil, got {self.ndim}D")
        return self.array

    def as_vector(self) -> np.ndarray:
        """The 1D weight vector (only valid for 1D stencils)."""
        if self.ndim != 1:
            raise ValueError(f"as_vector() requires a 1D stencil, got {self.ndim}D")
        return self.array

    def planes(self) -> list[np.ndarray]:
        """Decompose a 3D stencil into its ``2h+1`` 2D weight planes.

        This is the plane view used by Algorithm 2 of the paper: plane
        ``i`` is the 2D sub-stencil applied to input plane ``z + i - h``.
        """
        if self.ndim != 3:
            raise ValueError(f"planes() requires a 3D stencil, got {self.ndim}D")
        return [self.array[i] for i in range(self.side)]

    # -- algebra ----------------------------------------------------------
    def matrix_rank(self, tol: float = 1e-12) -> int:
        """Numerical rank of the 2D weight matrix."""
        return int(np.linalg.matrix_rank(self.as_matrix(), tol=tol))

    def scaled(self, factor: float) -> "StencilWeights":
        """New weights multiplied by ``factor`` (same pattern)."""
        return StencilWeights(self.pattern, self.array * factor)

    def nonzero_count(self) -> int:
        """Number of grid points with nonzero weight."""
        return int(np.count_nonzero(self.array))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StencilWeights):
            return NotImplemented
        return self.pattern == other.pattern and np.array_equal(
            self.array, other.array
        )

    def __hash__(self) -> int:
        return hash((self.pattern, self.array.tobytes()))


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

def box_weights(
    radius: int,
    ndim: int,
    values: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> StencilWeights:
    """Dense box-stencil weights.

    When ``values`` is omitted, random weights in ``[0.1, 1)`` are drawn
    (bounded away from zero so low-rank pivots stay well conditioned).
    """
    pattern = StencilPattern(Shape.BOX, radius, ndim)
    shape = (pattern.side,) * ndim
    if values is None:
        rng = rng or np.random.default_rng()
        values = rng.uniform(0.1, 1.0, size=shape)
    return StencilWeights(pattern, np.asarray(values, dtype=np.float64))


def star_weights(
    radius: int,
    ndim: int,
    axis_values: np.ndarray | None = None,
    center: float | None = None,
    rng: np.random.Generator | None = None,
) -> StencilWeights:
    """Star-stencil weights embedded in the dense ``(2h+1)^d`` array.

    Parameters
    ----------
    axis_values:
        Array of shape ``(ndim, 2 * radius)`` giving, per axis, the
        weights at offsets ``-h..-1, 1..h`` (centre excluded).  Random
        when omitted.
    center:
        Weight of the centre point (random when omitted).
    """
    pattern = StencilPattern(Shape.STAR, radius, ndim)
    rng = rng or np.random.default_rng()
    if axis_values is None:
        axis_values = rng.uniform(0.1, 1.0, size=(ndim, 2 * radius))
    axis_values = np.asarray(axis_values, dtype=np.float64)
    if axis_values.shape != (ndim, 2 * radius):
        raise ValueError(
            f"axis_values must have shape {(ndim, 2 * radius)}, "
            f"got {axis_values.shape}"
        )
    if center is None:
        center = float(rng.uniform(0.1, 1.0))

    h = radius
    arr = np.zeros((pattern.side,) * ndim, dtype=np.float64)
    centre_idx = (h,) * ndim
    arr[centre_idx] = center
    offsets = [o for o in range(-h, h + 1) if o != 0]
    for axis in range(ndim):
        for slot, off in enumerate(offsets):
            idx = list(centre_idx)
            idx[axis] = h + off
            arr[tuple(idx)] = axis_values[axis, slot]
    return StencilWeights(pattern, arr)


def _radial_key(offset: tuple[int, ...]) -> tuple[int, ...]:
    """Equivalence-class key for radial symmetry.

    Two offsets share a weight iff their absolute coordinates are equal as
    multisets.  This implies all the reflection/transpose symmetries the
    paper's radially symmetric matrices possess (Fig. 2).
    """
    return tuple(sorted(abs(o) for o in offset))


def radially_symmetric_weights(
    radius: int,
    ndim: int,
    shape: Shape = Shape.BOX,
    class_values: dict[tuple[int, ...], float] | None = None,
    rng: np.random.Generator | None = None,
) -> StencilWeights:
    """Weights constant on radial symmetry classes (Section II-C).

    Every offset whose absolute coordinates form the same multiset gets
    the same weight.  For a 2D box stencil of radius ``h`` the resulting
    weight matrix is symmetric under row flips, column flips and
    transposition, and therefore has ``rank <= h + 1``.
    """
    pattern = StencilPattern(shape, radius, ndim)
    rng = rng or np.random.default_rng()
    class_values = dict(class_values or {})
    h = radius
    arr = np.zeros((pattern.side,) * ndim, dtype=np.float64)
    for off in pattern.offsets():
        key = _radial_key(off)
        if key not in class_values:
            class_values[key] = float(rng.uniform(0.1, 1.0))
        arr[tuple(o + h for o in off)] = class_values[key]
    return StencilWeights(pattern, arr)


def is_radially_symmetric(weights: StencilWeights, tol: float = 1e-12) -> bool:
    """True iff offsets in the same radial class carry the same weight.

    ``tol`` is relative to the weight magnitude (floor 1.0), so kernels
    produced by floating-point composition still register as symmetric.
    """
    h = weights.radius
    seen: dict[tuple[int, ...], float] = {}
    it = np.ndindex(*weights.array.shape)
    for idx in it:
        off = tuple(i - h for i in idx)
        key = _radial_key(off)
        val = float(weights.array[idx])
        if key in seen:
            if abs(seen[key] - val) > tol * max(1.0, abs(val)):
                return False
        else:
            seen[key] = val
    return True


def compose_weights(first: StencilWeights, second: StencilWeights) -> StencilWeights:
    """Temporal fusion of two stencils (Section IV-A).

    Applying ``first`` and then ``second`` to a grid equals applying one
    stencil whose weight array is the full convolution of the two weight
    arrays; its radius is the sum of the radii.  Fusing a small kernel
    with itself (e.g. 3x Box-2D9P -> a 7x7 kernel) is how LoRAStencil
    keeps TCU fragments busy for low-radius stencils.
    """
    if first.ndim != second.ndim:
        raise ValueError(
            f"cannot compose {first.ndim}D stencil with {second.ndim}D stencil"
        )
    from scipy.signal import convolve

    arr = convolve(first.array, second.array, mode="full")
    radius = first.radius + second.radius
    if (
        first.pattern.shape is Shape.STAR
        and second.pattern.shape is Shape.STAR
        and first.ndim == 1
    ):
        shape = Shape.STAR
    else:
        # composing any 2D/3D pair (even star with star) fills the box
        shape = Shape.BOX
    pattern = StencilPattern(shape, radius, first.ndim)
    return StencilWeights(pattern, arr)
