"""Brick baseline (P3HPC'18 / SC'19): fine-grained brick data layout.

Bricks reorganize the grid into small dense blocks (8^d) so that a
stencil's neighbour accesses stay within a brick and its face
neighbours, cutting prefetch and cache pressure on CPUs and GPUs.  The
arithmetic stays on CUDA cores; performance is bound by instruction
issue and L1/shared throughput rather than DRAM.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.analytic import analytic_counters, halo_read_factor
from repro.baselines.base import FootprintScale, MethodTraits, StencilMethod
from repro.stencil.reference import reference_apply

__all__ = ["BrickMethod"]


class BrickMethod(StencilMethod):
    """Brick-layout stencil on CUDA cores."""

    name = "Brick"
    uses_tensor_cores = False

    #: brick edge length
    BRICK = 8

    def apply(self, padded: np.ndarray) -> np.ndarray:
        return reference_apply(padded, self.weights)

    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        grid_shape = grid_shape or self.default_measure_grid()
        points = int(np.prod(grid_shape))
        npts = self.kernel.points
        h = self.weights.radius
        block = (self.BRICK,) * self.weights.ndim
        halo = halo_read_factor(block, h)
        counters = analytic_counters(
            points,
            flops_per_point=2.0 * npts,
            # vector loads within a brick serve a warp per kernel point;
            # register reuse halves revisits relative to naive
            shared_loads_per_point=npts / 64.0,
            shared_stores_per_point=halo / 32.0,
            # bricks make DRAM reads near-compulsory (halo only at faces)
            dram_read_bytes_per_point=8.0 * min(halo, 1.5),
            dram_write_bytes_per_point=8.0,
        )
        return FootprintScale(counters=counters, points=points)

    def traits(self) -> MethodTraits:
        return MethodTraits(
            cuda_efficiency=0.25,
            dram_efficiency=0.75,
            smem_efficiency=0.70,
            issue_efficiency=0.40,
            fixed_time_s=47e-12,
        )
