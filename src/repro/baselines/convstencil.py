"""ConvStencil (PPoPP'24) — the paper's primary comparator.

ConvStencil turns stencils into GEMM through the *stencil2row* layout:
the input is rewritten into **two** matrices in shared memory, and every
tile of ``8 x (2h+2)`` outputs is produced by multiplying rows of those
matrices (fragment A operands) with kernel-derived weight fragments.
The cost structure the LoRAStencil paper analyses:

* fragment loads (= MMA count) per ``8 x (2h+2)`` output tile:
  ``2 * ceil((2h+1)^2 / 4)`` (Eq. 13) — there is no fragment reuse, so
  the *dimension residue* redundancy is paid on every tile;
* two stencil2row matrices are materialized in shared memory, roughly
  doubling stores and shrinking occupancy.

Implementation here: a column *band* of width ``4h+2`` feeds ``2h+2``
output columns.  The band is stored compactly as two row-major matrices
``M1`` (band columns ``0..2h``) and ``M2`` (band columns ``2h+1..4h+1``).
The stencil2row row for output row ``p`` is then the flattened window
``M[p : p+2h+1, :]`` — an *overlapping view* of the compact store — so
fragment A loads use strided views while stores stay ~2x the raw input.
The GEMM runs on the same TCU simulator as LoRAStencil and produces
bit-accurate stencil output.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FootprintScale, MethodTraits, StencilMethod
from repro.stencil.kernels import BenchmarkKernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind

__all__ = ["ConvStencil2D", "ConvStencil1D", "ConvStencil3D", "ConvStencilMethod"]


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to


class ConvStencil2D:
    """stencil2row + GEMM executor for one 2D kernel."""

    def __init__(self, weights: StencilWeights | np.ndarray) -> None:
        if isinstance(weights, StencilWeights):
            w = weights.as_matrix()
        else:
            w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 2 or w.shape[0] != w.shape[1] or w.shape[0] % 2 != 1:
            raise ValueError(f"weight matrix must be square/odd, got {w.shape}")
        self.weight_matrix = w
        self.radius = (w.shape[0] - 1) // 2
        n = w.shape[0]
        self.side = n
        #: outputs per tile row (the 2h+2 of Eq. 13, capped at the
        #: 8-column FP64 accumulator width)
        self.tile_cols = min(2 * self.radius + 2, 8)
        #: k-extent of each stencil2row half, 4-aligned
        self.k_half = _round_up(n * n, 4)
        self._b1_frags, self._b2_frags = self._build_weight_fragments()

    # -- weights -----------------------------------------------------------
    def _build_weight_fragments(self) -> tuple[list[Fragment], list[Fragment]]:
        n, h = self.side, self.radius
        w = self.weight_matrix
        b1 = np.zeros((self.k_half, 8), dtype=np.float64)
        b2 = np.zeros((self.k_half, 8), dtype=np.float64)
        for i in range(n):
            for jj in range(n):
                k = i * n + jj
                for q in range(self.tile_cols):
                    j1 = jj - q
                    if 0 <= j1 <= 2 * h:
                        b1[k, q] = w[i, j1]
                    j2 = (2 * h + 1) + jj - q
                    if 0 <= j2 <= 2 * h:
                        b2[k, q] = w[i, j2]
        frags1 = [
            Fragment.from_matrix(FragmentKind.B, b1[4 * kb : 4 * kb + 4, :])
            for kb in range(self.k_half // 4)
        ]
        frags2 = [
            Fragment.from_matrix(FragmentKind.B, b2[4 * kb : 4 * kb + 4, :])
            for kb in range(self.k_half // 4)
        ]
        return frags1, frags2

    @property
    def fragment_loads_per_tile(self) -> int:
        """Eq. 13: ``2 * ceil((2h+1)^2 / 4)`` per 8 x (2h+2) outputs."""
        return 2 * (self.k_half // 4)

    @property
    def mma_per_tile(self) -> int:
        """ConvStencil has no fragment reuse: MMAs == fragment loads."""
        return self.fragment_loads_per_tile

    # -- functional -----------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Exact stencil output (same math the simulated GEMM performs)."""
        from repro.stencil.patterns import Shape, StencilPattern

        pattern = StencilPattern(Shape.BOX, self.radius, 2)
        return reference_apply(padded, StencilWeights(pattern, self.weight_matrix))

    # -- simulated -----------------------------------------------------------
    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block_rows: int = 32,
    ) -> tuple[np.ndarray, EventCounters]:
        """stencil2row sweep on the TCU simulator."""
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 2:
            raise ValueError(f"expected 2D input, got {padded.ndim}D")
        h, n = self.radius, self.side
        rows, cols = padded.shape[0] - 2 * h, padded.shape[1] - 2 * h
        if rows <= 0 or cols <= 0:
            raise ValueError(f"padded input {padded.shape} too small for radius {h}")

        device = device or Device()
        start = device.snapshot()
        warp = device.warp()
        gmem_in = device.global_array(padded, name="input")
        gmem_out = device.global_array(np.zeros((rows, cols)), name="output")

        block_rows = max(8, _round_up(min(block_rows, rows), 8))
        m_rows = block_rows + 2 * h
        flat_len = m_rows * n + 8  # margin for the 4-aligned k padding

        for br in range(0, rows, block_rows):
            for q0 in range(0, cols, self.tile_cols):
                m1 = device.shared((1, flat_len), name="stencil2row-1")
                m2 = device.shared((1, flat_len), name="stencil2row-2")
                self._fill_band(gmem_in, m1, m2, br, q0, m_rows, padded.shape)
                r_lim = min(block_rows, rows - br)
                c_valid = min(self.tile_cols, cols - q0)
                for p0 in range(0, r_lim, 8):
                    acc = None
                    for m, frags in ((m1, self._b1_frags), (m2, self._b2_frags)):
                        for kb in range(self.k_half // 4):
                            a_tile = m.read_fragment_view(
                                start=p0 * n + 4 * kb,
                                shape=(8, 4),
                                row_stride=n,
                            )
                            a_frag = Fragment.from_matrix(FragmentKind.A, a_tile)
                            acc = warp.mma_sync(a_frag, frags[kb], acc)
                    tile = acc.to_matrix()
                    vr = min(8, rows - (br + p0))
                    gmem_out.write(
                        (slice(br + p0, br + p0 + vr), slice(q0, q0 + c_valid)),
                        tile[:vr, :c_valid],
                    )
        return gmem_out.data, device.events_since(start)

    def _fill_band(self, gmem_in, m1, m2, br, q0, m_rows, padded_shape) -> None:
        """Build the two stencil2row matrices of one column band.

        ``M1`` holds band columns ``0..2h``, ``M2`` columns
        ``2h+1..4h+1``; both are the shared-memory stores ConvStencil
        pays that LoRAStencil avoids (Fig. 10's store gap).
        """
        n = self.side
        avail_r = min(m_rows, padded_shape[0] - br)
        for m, c_off in ((m1, 0), (m2, n)):
            avail_c = min(n, padded_shape[1] - (q0 + c_off))
            band = np.zeros((m_rows, n), dtype=np.float64)
            if avail_r > 0 and avail_c > 0:
                band[:avail_r, :avail_c] = gmem_in.read(
                    (
                        slice(br, br + avail_r),
                        slice(q0 + c_off, q0 + c_off + avail_c),
                    )
                )
            # ConvStencil is an Ampere implementation: band copies use
            # cp.async like LoRAStencil's (the store *count* is what
            # differs, not the staging path)
            m.write_tile(0, 0, band.reshape(1, -1), via_registers=False)


class ConvStencil1D:
    """ConvStencil's 1D GEMM: 8 groups of ``2h+2`` consecutive outputs."""

    def __init__(self, weights: StencilWeights | np.ndarray) -> None:
        if isinstance(weights, StencilWeights):
            w = weights.as_vector()
        else:
            w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.shape[0] % 2 != 1:
            raise ValueError(f"weight vector must have odd length, got {w.shape}")
        self.weight_vector = w
        self.radius = (w.shape[0] - 1) // 2
        self.tile_cols = 2 * self.radius + 2
        self.k_len = _round_up(4 * self.radius + 2, 4)
        b = np.zeros((self.k_len, 8), dtype=np.float64)
        for k in range(4 * self.radius + 2):
            for q in range(self.tile_cols):
                j = k - q
                if 0 <= j <= 2 * self.radius:
                    b[k, q] = w[j]
        self._b_frags = [
            Fragment.from_matrix(FragmentKind.B, b[4 * kb : 4 * kb + 4, :])
            for kb in range(self.k_len // 4)
        ]

    @property
    def fragment_loads_per_tile(self) -> int:
        return self.k_len // 4

    @property
    def mma_per_tile(self) -> int:
        return self.fragment_loads_per_tile

    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Exact 1D stencil application (padded -> interior)."""
        padded = np.asarray(padded, dtype=np.float64)
        n = padded.shape[0] - 2 * self.radius
        out = np.zeros(n, dtype=np.float64)
        for t, wt in enumerate(self.weight_vector):
            out += wt * padded[t : t + n]
        return out

    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block: int = 1024,
    ) -> tuple[np.ndarray, EventCounters]:
        """1D stencil2row sweep on the TCU simulator."""
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != 1:
            raise ValueError(f"expected 1D input, got {padded.ndim}D")
        h = self.radius
        n = padded.shape[0] - 2 * h
        if n <= 0:
            raise ValueError(f"padded input too small for radius {h}")
        device = device or Device()
        start = device.snapshot()
        warp = device.warp()
        gmem_in = device.global_array(padded.reshape(1, -1), name="input")
        gmem_out = device.global_array(np.zeros((1, n)), name="output")

        tile_pts = 8 * self.tile_cols
        block = max(tile_pts, (min(block, n) // tile_pts) * tile_pts)
        buf_len = block + self.k_len + 8

        for b0 in range(0, n, block):
            smem = device.shared((1, buf_len), name="block")
            avail = min(buf_len, padded.shape[0] - b0)
            gmem_in.copy_to_shared(
                (slice(0, 1), slice(b0, b0 + avail)), smem, 0, 0, use_async=True
            )
            lim = min(block, n - b0)
            for t0 in range(0, lim, tile_pts):
                acc = None
                for kb in range(self.k_len // 4):
                    a_tile = smem.read_fragment_view(
                        start=t0 + 4 * kb,
                        shape=(8, 4),
                        row_stride=self.tile_cols,
                    )
                    a_frag = Fragment.from_matrix(FragmentKind.A, a_tile)
                    acc = warp.mma_sync(a_frag, self._b_frags[kb], acc)
                tile = acc.to_matrix()[:, : self.tile_cols].reshape(-1)
                valid = min(tile_pts, n - (b0 + t0))
                gmem_out.write(
                    (slice(0, 1), slice(b0 + t0, b0 + t0 + valid)),
                    tile[:valid].reshape(1, -1),
                )
        return gmem_out.data.reshape(-1), device.events_since(start)


class ConvStencil3D:
    """Plane-decomposed ConvStencil for 3D kernels.

    ConvStencil has no CUDA-core escape hatch: every kernel plane —
    including single-point planes of star kernels — goes through the full
    stencil2row GEMM, which is one reason the paper's 3D gap is the
    largest.
    """

    def __init__(self, weights: StencilWeights | np.ndarray) -> None:
        if isinstance(weights, StencilWeights):
            w = weights.array
        else:
            w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 3 or len(set(w.shape)) != 1 or w.shape[0] % 2 != 1:
            raise ValueError(f"weight array must be an odd cube, got {w.shape}")
        self.weight_array = w
        self.radius = (w.shape[0] - 1) // 2
        self.planes = [ConvStencil2D(w[i]) for i in range(w.shape[0])]

    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Exact 3D stencil via per-plane 2D application."""
        padded = np.asarray(padded, dtype=np.float64)
        h = self.radius
        zs, rs, cs = (s - 2 * h for s in padded.shape)
        out = np.zeros((zs, rs, cs), dtype=np.float64)
        for i, plane in enumerate(self.planes):
            for z in range(zs):
                out[z] += plane.apply(padded[z + i])
        return out

    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        block_rows: int = 8,
    ) -> tuple[np.ndarray, EventCounters]:
        """Per-plane simulated 3D sweep (every plane pays the GEMM)."""
        padded = np.asarray(padded, dtype=np.float64)
        h = self.radius
        zs, rs, cs = (s - 2 * h for s in padded.shape)
        device = device or Device()
        start = device.snapshot()
        out = np.zeros((zs, rs, cs), dtype=np.float64)
        for i, plane in enumerate(self.planes):
            for z in range(zs):
                tile, _ = plane.apply_simulated(
                    padded[z + i], device=device, block_rows=block_rows
                )
                out[z] += tile
        gmem_out = device.global_array(np.zeros_like(out), name="output")
        gmem_out.write((slice(None),) * 3, out)
        return out, device.events_since(start)


class ConvStencilMethod(StencilMethod):
    """ConvStencil bound to a benchmark kernel (any dimensionality).

    Per the paper, ConvStencil applies 3x temporal fusion to the 3D
    kernels (it cannot keep fragments busy otherwise), which triples its
    effective radius per sweep while covering three timesteps.
    """

    name = "ConvStencil"
    uses_tensor_cores = True

    #: temporal fusion factor for small (radius-1) 2D kernels
    #: ("a technique equally employed in LoRAStencil", Section V-A)
    FUSION_2D = 3
    #: temporal fusion factor used for 3D kernels (Section V-B)
    FUSION_3D = 3

    def __init__(self, kernel: BenchmarkKernel) -> None:
        super().__init__(kernel)
        self.steps_per_sweep = 1
        w = kernel.weights
        if w.ndim == 1:
            self.engine: ConvStencil1D | ConvStencil2D | ConvStencil3D = (
                ConvStencil1D(w)
            )
        elif w.ndim == 2:
            if w.radius == 1:
                from repro.core.fusion import fuse_kernel

                fused = fuse_kernel(w, self.FUSION_2D)
                self.engine = ConvStencil2D(fused.fused.as_matrix())
                self.steps_per_sweep = self.FUSION_2D
            else:
                self.engine = ConvStencil2D(w.as_matrix())
        else:
            from repro.core.fusion import fuse_kernel

            fused = fuse_kernel(w, self.FUSION_3D)
            self.engine = ConvStencil3D(fused.fused)
            self.steps_per_sweep = self.FUSION_3D

    def apply(self, padded: np.ndarray) -> np.ndarray:
        if self.steps_per_sweep == 1:
            return self.engine.apply(padded)
        # the fused engine needs the fused halo; callers padding with the
        # base radius get the base-kernel behaviour via plain reference
        return reference_apply(padded, self.weights)

    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        grid_shape = grid_shape or self.default_measure_grid()
        rng = np.random.default_rng(0)
        h = (
            self.engine.radius
            if not isinstance(self.engine, ConvStencil3D)
            else self.engine.radius
        )
        padded = rng.normal(size=tuple(s + 2 * h for s in grid_shape))
        if isinstance(self.engine, ConvStencil1D):
            _, counters = self.engine.apply_simulated(padded.reshape(-1))
        else:
            _, counters = self.engine.apply_simulated(padded)
        if isinstance(self.engine, ConvStencil3D):
            # z-streaming correction: the per-slab simulation re-copies
            # each global element once per kernel plane, but a streaming
            # sweep keeps the 2h+1 live slabs resident and reads DRAM
            # once; shared/TCU counters are unaffected
            planes = 2 * self.engine.radius + 1
            counters.global_load_bytes //= planes
        points = int(np.prod(grid_shape)) * self.steps_per_sweep
        return FootprintScale(counters=counters, points=points)

    def traits(self) -> MethodTraits:
        # slightly lower memory efficiencies than LoRAStencil: the
        # stencil2row matrices double shared-memory residency per block,
        # costing occupancy (Section V-D)
        return MethodTraits(
            tcu_efficiency=0.70,
            cuda_efficiency=0.25,
            dram_efficiency=0.80,
            smem_efficiency=0.85,
            issue_efficiency=0.55,
        )
