"""LoRAStencil-Best: the rank-1 upper bound of Fig. 8.

Fig. 8's caption defines LoRAStencil-Best as "the performance of
LoRAStencil when the original weight matrix is a rank-1 matrix": the
whole kernel collapses to a single ``U X V`` chain (one RDG pass, no
pyramid), the cheapest point of the method's design space.

This adapter swaps each benchmark kernel's weights for a deterministic
rank-1 separable kernel of the *same radius* (the outer product of a
symmetric vector with itself — e.g. a separable binomial smoother) and
reuses the standard engines, so every structural choice (fusion policy,
tiling, blocking) matches plain LoRAStencil and only the rank changes.

The rank collapse is directly visible in the lowered artifact: the Best
plan's tile program (``method.program``, see
:mod:`repro.core.lowering`) carries a single ``U X V`` MMA chain, so
its instruction count lower-bounds every same-radius LoRAStencil plan's.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lorastencil import LoRAStencilMethod
from repro.stencil.kernels import BenchmarkKernel
from repro.stencil.patterns import Shape, StencilPattern
from repro.stencil.weights import StencilWeights

__all__ = ["LoRAStencilBestMethod", "rank1_weights_like"]


def _binomial_vector(radius: int) -> np.ndarray:
    """Symmetric positive vector (normalized binomial coefficients)."""
    v = np.array([1.0])
    for _ in range(2 * radius):
        v = np.convolve(v, [0.5, 0.5])
    return v


def rank1_weights_like(weights: StencilWeights) -> StencilWeights:
    """The rank-1 variant of a kernel, preserving its plane structure.

    * 1D: unchanged shape (1D kernels are single-gather anyway);
    * 2D: ``u (x) u`` with the binomial vector — exactly rank 1;
    * 3D: each multi-point plane of the original kernel is replaced by
      the rank-1 ``u (x) u`` plane; single-point planes (the CUDA-core
      planes of star kernels, Alg. 2) keep their single weight — so the
      Best variant improves the *rank*, not the kernel's plane split.
    """
    h, ndim = weights.radius, weights.ndim
    if ndim == 1:
        # 1D has no residual dimension: every 1D kernel already runs as
        # a single gather, so its Best variant is itself
        return weights
    u = _binomial_vector(h)
    if ndim == 2:
        return StencilWeights(
            StencilPattern(Shape.BOX, h, 2), np.multiply.outer(u, u)
        )

    plane_rank1 = np.multiply.outer(u, u)
    arr = np.array(weights.array, copy=True)
    for i in range(weights.side):
        if np.count_nonzero(arr[i]) > 1:
            scale = float(arr[i].sum()) or 1.0
            arr[i] = plane_rank1 * scale
    return StencilWeights(StencilPattern(Shape.BOX, h, ndim), arr)


class LoRAStencilBestMethod(LoRAStencilMethod):
    """LoRAStencil bound to the rank-1 variant of a benchmark kernel."""

    name = "LoRAStencil-Best"

    def __init__(self, kernel: BenchmarkKernel, config=None) -> None:
        best_kernel = BenchmarkKernel(
            name=kernel.name,
            weights=rank1_weights_like(kernel.weights),
            problem_size=kernel.problem_size,
            iterations=kernel.iterations,
            blocking=kernel.blocking,
        )
        super().__init__(best_kernel, config=config)
