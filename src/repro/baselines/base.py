"""Common baseline interface and calibration traits.

A :class:`StencilMethod` binds to one stencil kernel and produces

* exact functional output (``apply``), and
* an :class:`~repro.tcu.counters.EventCounters` *footprint per grid
  point and timestep* (``footprint_per_point``) that the cost model
  turns into GStencil/s.

Footprints are measured on the TCU simulator when the method has a
simulated implementation, and computed from the method's published
algorithmic structure otherwise; either way they scale linearly to the
paper's full problem sizes.

:class:`MethodTraits` carries the per-method efficiency calibration.
The *counters* encode each algorithm's structure (they vary per kernel);
the *traits* encode how close each implementation runs to hardware peaks
(one constant set per method, fixed across all kernels).  See DESIGN.md
Section 6 for the calibration policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.stencil.kernels import BenchmarkKernel
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters

__all__ = ["MethodTraits", "StencilMethod", "FootprintScale"]


@dataclass(frozen=True)
class MethodTraits:
    """Efficiency calibration of one method (fractions of hardware peak).

    Attributes
    ----------
    tcu_efficiency:
        Achieved fraction of tensor-core FP64 peak.
    cuda_efficiency:
        Achieved fraction of CUDA-core FP64 peak.
    dram_efficiency:
        Achieved fraction of HBM bandwidth.
    smem_efficiency:
        Achieved fraction of shared-memory throughput.
    issue_efficiency:
        Achieved fraction of the warp-scheduler instruction issue rate —
        the binding resource for fine-grained CUDA-core stencils.
    launch_overhead:
        Multiplicative slack for everything the counters do not see
        (synchronization, tail effects); >= 1.
    time_scale:
        Final multiplicative factor on modelled time.  1.0 for every
        method except TCStencil, whose FP16-only implementation the
        paper converts to FP64 terms by dividing its speed by 4
        (Section V-A) — i.e. ``time_scale = 4``.
    fixed_time_s:
        Additive seconds per point-update: the latency floor of
        latency-bound CUDA-core implementations (index arithmetic,
        dependent loads, predication) that no throughput term captures.
    """

    tcu_efficiency: float = 0.60
    cuda_efficiency: float = 0.25
    dram_efficiency: float = 0.80
    smem_efficiency: float = 0.80
    issue_efficiency: float = 0.50
    launch_overhead: float = 1.0
    time_scale: float = 1.0
    fixed_time_s: float = 0.0


@dataclass(frozen=True)
class FootprintScale:
    """A measured footprint together with the grid it was measured on."""

    counters: EventCounters
    points: int

    def per_point(self) -> dict[str, float]:
        """Event rates per grid point-timestep."""
        return {k: v / self.points for k, v in self.counters.as_dict().items()}


class StencilMethod(abc.ABC):
    """One evaluated system, bound to a single benchmark kernel."""

    #: Display name used in figures/tables.
    name: str = "method"
    #: Whether the method runs its arithmetic on the tensor cores.
    uses_tensor_cores: bool = False

    def __init__(self, kernel: BenchmarkKernel) -> None:
        self.kernel = kernel
        self.weights: StencilWeights = kernel.weights

    # -- functional -------------------------------------------------------
    @abc.abstractmethod
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Exact stencil application (padded -> interior)."""

    # -- performance --------------------------------------------------------
    @abc.abstractmethod
    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        """Hardware-event footprint for one sweep of ``grid_shape``.

        ``grid_shape`` defaults to a method-appropriate measurement grid;
        the result is meant to be read per point and scaled.
        """

    @abc.abstractmethod
    def traits(self) -> MethodTraits:
        """Efficiency calibration for the cost model."""

    # -- conveniences ---------------------------------------------------------
    def default_measure_grid(self) -> tuple[int, ...]:
        """A small grid that exercises the full blocking structure."""
        ndim = self.weights.ndim
        if ndim == 1:
            return (4096,)
        if ndim == 2:
            return (128, 128)
        return (8, 32, 32)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.kernel.name})"
