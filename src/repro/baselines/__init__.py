"""Baseline stencil systems (Section V's state-of-the-art comparison).

Every baseline computes the *exact same stencil* as the reference
executor — what differs between methods is performance structure: where
the data moves, how often it moves, and which compute unit does the
arithmetic.  Accordingly each method exposes:

* ``apply(padded)`` — functionally exact output (validated against
  :func:`repro.stencil.reference.reference_apply` in the test suite);
* a performance footprint — either *measured* by running the method on
  the TCU simulator (:class:`~repro.baselines.convstencil.ConvStencil2D`
  implements the full stencil2row pipeline) or *analytic* per-point
  event counts derived from the method's published structure;
* :class:`~repro.baselines.base.MethodTraits` — the efficiency
  calibration the cost model uses (see DESIGN.md Section 6).
"""

from repro.baselines.base import MethodTraits, StencilMethod
from repro.baselines.convstencil import (
    ConvStencil1D,
    ConvStencil2D,
    ConvStencil3D,
    ConvStencilMethod,
)
from repro.baselines.tcstencil import TCStencilMethod
from repro.baselines.cudnn import CuDNNMethod
from repro.baselines.amos import AMOSMethod
from repro.baselines.brick import BrickMethod
from repro.baselines.drstencil import DRStencilMethod
from repro.baselines.naive import NaiveCUDAMethod
from repro.baselines.lorastencil import LoRAStencilMethod
from repro.baselines.registry import BASELINE_METHODS, all_methods, get_method

__all__ = [
    "MethodTraits",
    "StencilMethod",
    "ConvStencil1D",
    "ConvStencil2D",
    "ConvStencil3D",
    "ConvStencilMethod",
    "TCStencilMethod",
    "CuDNNMethod",
    "AMOSMethod",
    "BrickMethod",
    "DRStencilMethod",
    "NaiveCUDAMethod",
    "LoRAStencilMethod",
    "BASELINE_METHODS",
    "all_methods",
    "get_method",
]
