"""Helpers for analytic (formula-derived) method footprints.

The CUDA-core baselines (cuDNN, Brick, DRStencil, naive) and the
FP16-fragment TCStencil have no implementation on our FP64 TCU
simulator; their per-sweep event counts are instead derived from each
method's published algorithmic structure.  This module centralizes the
arithmetic so each baseline states only its *rates* (events per point).
"""

from __future__ import annotations

import math

from repro.tcu.counters import EventCounters

__all__ = ["analytic_counters", "halo_read_factor"]

_FP64 = 8


def analytic_counters(
    points: int,
    flops_per_point: float = 0.0,
    mma_per_point: float = 0.0,
    shared_loads_per_point: float = 0.0,
    shared_stores_per_point: float = 0.0,
    dram_read_bytes_per_point: float = 2 * _FP64,
    dram_write_bytes_per_point: float = _FP64,
    shuffles_per_point: float = 0.0,
    register_bytes_per_point: float = 0.0,
) -> EventCounters:
    """Assemble an :class:`EventCounters` from per-point rates.

    Default DRAM traffic is the compulsory minimum: read the input once
    (8 B), write the output once (8 B) — ``dram_read`` defaults to twice
    that to reflect the halo/no-reuse middle ground; methods override.
    """
    return EventCounters(
        mma_ops=math.ceil(mma_per_point * points),
        shared_load_requests=math.ceil(shared_loads_per_point * points),
        shared_store_requests=math.ceil(shared_stores_per_point * points),
        shuffle_ops=math.ceil(shuffles_per_point * points),
        cuda_core_flops=math.ceil(flops_per_point * points),
        global_load_bytes=math.ceil(dram_read_bytes_per_point * points),
        global_store_bytes=math.ceil(dram_write_bytes_per_point * points),
        register_intermediate_bytes=math.ceil(register_bytes_per_point * points),
    )


def halo_read_factor(block: tuple[int, ...], radius: int) -> float:
    """How much more than once each input element is read, given a block
    tiling with a halo of ``radius`` on every side.

    A block of shape ``B`` reads ``prod(B_i + 2h)`` elements to update
    ``prod(B_i)``; the ratio is the per-point DRAM read inflation.
    """
    num = 1.0
    den = 1.0
    for b in block:
        num *= b + 2 * radius
        den *= b
    return num / den
