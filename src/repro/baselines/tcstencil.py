"""TCStencil baseline (ICS'22): the first stencil-on-TCU system.

TCStencil maps stencils to FP16 ``16x16x16`` tensor-core MMAs.  Two
structural limits the paper highlights:

* it is **FP16-only** — the fragment geometry its algorithm depends on
  does not exist at FP64.  Following Section V-A we model its FP16
  execution and divide the resulting speed by 4 (FP16 compute is 16x
  faster and FP16 bytes are half, giving at best 4x over an FP64
  equivalent), implemented as ``time_scale = 4``;
* it suffers the same *dimension residue* as ConvStencil: gathering the
  residual dimension costs one shifted fragment pass per kernel row.

A FP16 16x16x16 MMA (8192 FLOPs at 312 TFLOP/s) occupies the tensor
core for the same time as an FP64 8x8x4 MMA (512 FLOPs at 19.5
TFLOP/s), so FP16 MMA counts are recorded directly in ``mma_ops``.
FP16 traffic is 2 bytes per element.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.analytic import analytic_counters, halo_read_factor
from repro.baselines.base import FootprintScale, MethodTraits, StencilMethod
from repro.stencil.reference import reference_apply

__all__ = ["TCStencilMethod"]


class TCStencilMethod(StencilMethod):
    """FP16 tensor-core stencil with dimension residue, scored at FP64/4."""

    name = "TCStencil"
    uses_tensor_cores = True

    #: FP16 fragment edge
    TILE = 16

    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Functional output in FP64 (the FP16 loss is a precision
        matter the paper's comparison already normalizes away)."""
        return reference_apply(padded, self.weights)

    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        grid_shape = grid_shape or self.default_measure_grid()
        points = int(np.prod(grid_shape))
        h = self.weights.radius
        rows = 2 * h + 1
        tile_pts = self.TILE * self.TILE
        # one 16x16 output tile: each of the 2h+1 kernel rows needs a
        # shifted input fragment and one MMA for the collected dimension,
        # plus one pass to reduce the residual dimension
        mma_per_tile = rows + 1
        loads_per_tile = rows + 1
        if self.weights.ndim == 1:
            mma_per_tile = max(1, (rows + 3) // 4)
            loads_per_tile = mma_per_tile
            tile_pts = 256
        elif self.weights.ndim == 3:
            # one 2D pass per kernel plane, plus the cross-plane residue
            # pass: the 16x16 fragment geometry cannot gather the z
            # dimension either, so every plane's partial result is
            # re-gathered (TCStencil has no CUDA-core escape for 3D)
            mma_per_tile = (2 * h + 1) * (rows + 1) ** 2
            loads_per_tile = mma_per_tile
        block = (self.TILE,) * min(self.weights.ndim, 2)
        halo = halo_read_factor(block, h)
        counters = analytic_counters(
            points,
            mma_per_point=mma_per_tile / tile_pts,
            shared_loads_per_point=loads_per_tile / tile_pts,
            shared_stores_per_point=halo / 32.0,
            # FP16: 2 bytes per element
            dram_read_bytes_per_point=2.0 * halo,
            dram_write_bytes_per_point=2.0,
            register_bytes_per_point=2.0 * halo,
        )
        return FootprintScale(counters=counters, points=points)

    def traits(self) -> MethodTraits:
        return MethodTraits(
            tcu_efficiency=0.42,
            dram_efficiency=0.70,
            smem_efficiency=0.65,
            issue_efficiency=0.40,
            time_scale=4.0,
        )
