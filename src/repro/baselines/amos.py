"""AMOS-style baseline: automatic tensorization without stencil insight.

AMOS (ISCA'22) maps tensor computations onto spatial accelerators via a
generic hardware abstraction.  Applied to a stencil it finds an
im2col-like mapping onto the TCU but — as the paper notes — "does not
optimize the mapping from stencil to TCU, squandering a significant
portion of computational power": every output tile re-stages its full
neighbourhood (no fragment reuse, no residual-dimension gathering), and
part of the expanded layout spills through global memory.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.analytic import analytic_counters
from repro.baselines.base import FootprintScale, MethodTraits, StencilMethod
from repro.stencil.reference import reference_apply

__all__ = ["AMOSMethod"]


def _round_up(x: int, to: int) -> int:
    return ((x + to - 1) // to) * to


class AMOSMethod(StencilMethod):
    """Auto-mapped im2col on tensor cores, no stencil-specific reuse."""

    name = "AMOS"
    uses_tensor_cores = True

    def apply(self, padded: np.ndarray) -> np.ndarray:
        return reference_apply(padded, self.weights)

    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        grid_shape = grid_shape or self.default_measure_grid()
        points = int(np.prod(grid_shape))
        npts = self.kernel.points
        k = _round_up(npts, 4)
        # per 8x8 output tile: the data operand is a fresh K x 8 column
        # group per output column block -> K/4 fragments per 8 outputs
        loads_per_point = (k / 4.0) / 8.0
        mma_per_point = loads_per_point
        counters = analytic_counters(
            points,
            mma_per_point=mma_per_point,
            shared_loads_per_point=loads_per_point,
            # im2col staging written to shared for every tile
            shared_stores_per_point=npts / 32.0,
            # half the expanded layout round-trips through DRAM
            dram_read_bytes_per_point=8.0 * (1.0 + 0.5 * npts),
            dram_write_bytes_per_point=8.0 * (1.0 + 0.5 * npts),
            register_bytes_per_point=8.0 * npts / 4.0,
        )
        return FootprintScale(counters=counters, points=points)

    def traits(self) -> MethodTraits:
        return MethodTraits(
            tcu_efficiency=0.40,
            dram_efficiency=0.60,
            smem_efficiency=0.60,
            issue_efficiency=0.40,
            launch_overhead=1.38,
        )
