"""Naive CUDA-core stencil: one thread per output, direct weighted sum.

Not part of the paper's Fig. 8 line-up, but the natural floor every
optimized method is implicitly measured against, and the substrate for
the Fig. 9 "RDG on CUDA cores" intuition.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.analytic import analytic_counters, halo_read_factor
from repro.baselines.base import FootprintScale, MethodTraits, StencilMethod
from repro.stencil.reference import reference_apply

__all__ = ["NaiveCUDAMethod"]


class NaiveCUDAMethod(StencilMethod):
    """Direct per-point stencil on CUDA cores with shared-memory tiling."""

    name = "Naive-CUDA"
    uses_tensor_cores = False

    def apply(self, padded: np.ndarray) -> np.ndarray:
        return reference_apply(padded, self.weights)

    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        grid_shape = grid_shape or self.default_measure_grid()
        points = int(np.prod(grid_shape))
        npts = self.kernel.points
        h = self.weights.radius
        block = (32,) * self.weights.ndim
        halo = halo_read_factor(block, h)
        counters = analytic_counters(
            points,
            flops_per_point=2.0 * npts,
            # every output's full neighbourhood is fetched from shared;
            # one request serves the 32 outputs of a warp per kernel point
            shared_loads_per_point=npts / 32.0,
            shared_stores_per_point=halo / 32.0,
            dram_read_bytes_per_point=8.0 * halo,
            dram_write_bytes_per_point=8.0,
            register_bytes_per_point=8.0 * halo,
        )
        return FootprintScale(counters=counters, points=points)

    def traits(self) -> MethodTraits:
        return MethodTraits(
            cuda_efficiency=0.20,
            dram_efficiency=0.60,
            smem_efficiency=0.60,
            issue_efficiency=0.30,
            fixed_time_s=60e-12,
        )
