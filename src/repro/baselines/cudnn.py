"""cuDNN-style convolution baseline.

cuDNN treats the stencil as a general convolution: an im2col
transformation materialized through DRAM followed by a dense GEMM.  In
FP64 cuDNN does not use the tensor cores (Section V-B), and with no
stencil-specific locality work the im2col traffic — every input element
replicated once per kernel point — makes it massively memory-bound,
which is why the paper reports a 20.11x mean speedup over it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.analytic import analytic_counters
from repro.baselines.base import FootprintScale, MethodTraits, StencilMethod
from repro.stencil.reference import reference_apply

__all__ = ["CuDNNMethod"]


class CuDNNMethod(StencilMethod):
    """im2col + FP64 GEMM on CUDA cores (no TCU)."""

    name = "cuDNN"
    uses_tensor_cores = False

    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Functionally exact: convolution with the stencil weights.

        (We evaluate the same GEMM the im2col would produce — reference
        cross-correlation — since im2col is a pure data-layout step.)
        """
        return reference_apply(padded, self.weights)

    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        grid_shape = grid_shape or self.default_measure_grid()
        points = int(np.prod(grid_shape))
        npts = self.kernel.points
        counters = analytic_counters(
            points,
            flops_per_point=2.0 * npts,
            # im2col: read input, write the expanded matrix, read it back
            # for the GEMM, write the output
            dram_read_bytes_per_point=8.0 * (1.0 + npts),
            dram_write_bytes_per_point=8.0 * (1.0 + npts),
        )
        return FootprintScale(counters=counters, points=points)

    def traits(self) -> MethodTraits:
        # the GEMM itself is highly tuned; the traffic is the problem
        return MethodTraits(
            cuda_efficiency=0.70,
            dram_efficiency=0.55,
            issue_efficiency=0.70,
            fixed_time_s=30e-12,
            launch_overhead=1.13,
        )
