"""Method registry: the Fig. 8 line-up in paper order."""

from __future__ import annotations

from repro.baselines.amos import AMOSMethod
from repro.baselines.base import StencilMethod
from repro.baselines.brick import BrickMethod
from repro.baselines.convstencil import ConvStencilMethod
from repro.baselines.cudnn import CuDNNMethod
from repro.baselines.drstencil import DRStencilMethod
from repro.baselines.lorastencil import LoRAStencilMethod
from repro.baselines.lorastencil_best import LoRAStencilBestMethod
from repro.baselines.naive import NaiveCUDAMethod
from repro.baselines.tcstencil import TCStencilMethod
from repro.stencil.kernels import BenchmarkKernel

__all__ = ["BASELINE_METHODS", "all_methods", "get_method"]

#: Fig. 8 methods, in the paper's plotting order.
BASELINE_METHODS: dict[str, type[StencilMethod]] = {
    "cuDNN": CuDNNMethod,
    "AMOS": AMOSMethod,
    "Brick": BrickMethod,
    "DRStencil": DRStencilMethod,
    "TCStencil": TCStencilMethod,
    "ConvStencil": ConvStencilMethod,
    "LoRAStencil": LoRAStencilMethod,
}

#: extra methods (Fig. 8's rank-1 "Best" series and the naive floor)
EXTRA_METHODS: dict[str, type[StencilMethod]] = {
    "Naive-CUDA": NaiveCUDAMethod,
    "LoRAStencil-Best": LoRAStencilBestMethod,
}


def get_method(name: str, kernel: BenchmarkKernel) -> StencilMethod:
    """Instantiate a method by (case-insensitive) name for a kernel."""
    table = {**BASELINE_METHODS, **EXTRA_METHODS}
    for key, cls in table.items():
        if key.lower() == name.lower():
            return cls(kernel)
    raise KeyError(f"unknown method {name!r}; available: {sorted(table)}")


def all_methods(kernel: BenchmarkKernel) -> list[StencilMethod]:
    """All Fig. 8 methods bound to ``kernel``, in paper order."""
    return [cls(kernel) for cls in BASELINE_METHODS.values()]
