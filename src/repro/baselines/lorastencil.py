"""LoRAStencil wrapped in the common method interface.

This adapter binds the core engines to a Table II benchmark kernel,
applying the paper's execution policy:

* 2D radius-1 kernels are temporally fused 3x (Section IV-A) so the
  16x16 input window is filled — the footprint is measured on the fused
  kernel and normalized per base timestep;
* 1D and 3D kernels run unfused (the 3D plane decomposition keeps TCU
  fragments busy without fusion, the advantage the paper credits for
  its largest speedups).

Footprints are *measured* by running the simulated engines, never
hand-derived; the simulated sweeps interpret the plan's lowered tile
program (:attr:`~repro.runtime.plan.StencilPlan.program`), so the
measured counts are the counts of the exact instruction schedule the
plan carries.

Engines are obtained through :func:`repro.compile`, so binding the same
kernel twice (or across benchmark repetitions) reuses one cached
:class:`~repro.runtime.plan.StencilPlan` instead of re-running the
decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FootprintScale, MethodTraits, StencilMethod
from repro.core.config import OptimizationConfig
from repro.core.engine1d import LoRAStencil1D
from repro.core.engine2d import LoRAStencil2D
from repro.core.engine3d import LoRAStencil3D
from repro.core.fusion import fuse_kernel
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import BenchmarkKernel
from repro.tcu.counters import EventCounters

__all__ = ["LoRAStencilMethod"]


class LoRAStencilMethod(StencilMethod):
    """The paper's system, bound to one benchmark kernel."""

    name = "LoRAStencil"
    uses_tensor_cores = True

    #: temporal fusion factor for small (radius-1) 2D kernels
    FUSION_2D = 3

    def __init__(
        self,
        kernel: BenchmarkKernel,
        config: OptimizationConfig | None = None,
    ) -> None:
        super().__init__(kernel)
        self.config = config or OptimizationConfig()
        self.steps_per_sweep = 1
        w = kernel.weights
        if w.ndim == 2 and w.radius == 1:
            fused = fuse_kernel(w, self.FUSION_2D)
            self.compiled = compile_stencil(fused.fused, config=self.config)
            self.steps_per_sweep = self.FUSION_2D
        else:
            self.compiled = compile_stencil(w, config=self.config)
        #: the compiled plan's engine (shared with every other holder of
        #: the same plan — plans and engines are read-only after compile)
        self.engine: LoRAStencil1D | LoRAStencil2D | LoRAStencil3D = (
            self.compiled.engine
        )

    @property
    def plan(self):
        """The cached :class:`~repro.runtime.plan.StencilPlan` behind this
        method (the fused plan when temporal fusion is active)."""
        return self.compiled.plan

    @property
    def program(self):
        """The lowered tile program(s) the simulated sweeps interpret."""
        return self.compiled.program

    def apply(self, padded: np.ndarray) -> np.ndarray:
        """One *base* timestep (padded with the base radius)."""
        if self.steps_per_sweep == 1:
            return self.compiled.apply(padded)
        # fused engine computes 3 steps at once; single-step callers get
        # the unfused plan's math (a plan-cache hit after the first call)
        base = compile_stencil(self.weights, config=self.config)
        return base.apply(padded)

    def apply_batch(self, grids, threaded: bool = False) -> np.ndarray:
        """Vectorized base-timestep sweep over equally shaped padded grids."""
        if self.steps_per_sweep == 1:
            return self.compiled.apply_batch(grids, threaded=threaded)
        base = compile_stencil(self.weights, config=self.config)
        return base.apply_batch(grids, threaded=threaded)

    def apply_fused(self, padded: np.ndarray) -> np.ndarray:
        """One fused sweep (padded with ``steps_per_sweep * radius``)."""
        return self.engine.apply(padded)

    def simulated_sweep(
        self,
        grid_shape: tuple[int, ...],
        seed: int = 0,
        backend: str | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Run one simulated sweep of the bound engine on a random grid.

        ``backend`` selects the execution backend; counters are
        bit-identical across backends, so footprints measured under the
        vectorized backend match the interpreter's exactly.
        """
        rng = np.random.default_rng(seed)
        h = self._engine_radius()
        padded = rng.normal(size=tuple(s + 2 * h for s in grid_shape))
        # through the compiled facade, so telemetry spans/metrics see it
        if isinstance(self.engine, LoRAStencil1D):
            return self.compiled.apply_simulated(
                padded.reshape(-1), backend=backend
            )
        return self.compiled.apply_simulated(padded, backend=backend)

    def footprint(self, grid_shape: tuple[int, ...] | None = None) -> FootprintScale:
        grid_shape = grid_shape or self.default_measure_grid()
        _, counters = self.simulated_sweep(grid_shape)
        if isinstance(self.engine, LoRAStencil3D):
            # z-streaming correction (see ConvStencilMethod.footprint):
            # a streaming sweep reads each global element once instead of
            # once per kernel plane
            planes = 2 * self.engine.radius + 1
            counters.global_load_bytes //= planes
        points = int(np.prod(grid_shape)) * self.steps_per_sweep
        return FootprintScale(counters=counters, points=points)

    def traits(self) -> MethodTraits:
        if not self.config.use_tensor_cores:
            # Fig. 9 level 0: the dense banded MCM on CUDA cores reaches
            # a small fraction of FP64 peak (unfused inner products over
            # mostly-zero bands)
            return MethodTraits(
                cuda_efficiency=0.157,
                dram_efficiency=0.85,
                smem_efficiency=0.85,
                issue_efficiency=0.60,
            )
        return MethodTraits(
            tcu_efficiency=0.86,
            cuda_efficiency=0.40,
            dram_efficiency=0.85,
            smem_efficiency=0.85,
            issue_efficiency=0.60,
        )

    def _engine_radius(self) -> int:
        return self.engine.radius
