"""Typed exception hierarchy for the public API.

Every error the library raises on a user-facing path derives from
:class:`ReproError`, so ``except ReproError`` catches anything the
library itself diagnosed while letting genuine bugs propagate.

For backwards compatibility each concrete error *also* subclasses the
builtin exception the pre-1.1 API raised in its place:

* :class:`KernelNotFoundError` is a :class:`KeyError` (registry lookups
  used to raise bare ``KeyError``);
* :class:`DecompositionError` and :class:`ShapeError` are
  :class:`ValueError` (decomposition and engine constructors used to
  raise bare ``ValueError``).

``except KeyError`` / ``except ValueError`` code written against the old
API therefore keeps working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "KernelNotFoundError",
    "DecompositionError",
    "ShapeError",
    "InputValidationError",
    "LoweringError",
    "PerfError",
    "BackendError",
    "ExecutionError",
    "FaultError",
]


class ReproError(Exception):
    """Base class of every exception the repro library raises."""


class KernelNotFoundError(ReproError, KeyError):
    """A kernel (or method) name is not present in its registry."""

    # KeyError renders its message repr()-quoted; restore plain text.
    __str__ = Exception.__str__


class DecompositionError(ReproError, ValueError):
    """A weight matrix cannot be decomposed as requested."""


class ShapeError(ReproError, ValueError):
    """An array has the wrong dimensionality, shape, or size."""


class LoweringError(ReproError, ValueError):
    """The lowering pipeline cannot produce a program as configured
    (unknown schedule name, dependence-violating custom schedule, …)."""


class PerfError(ReproError, ValueError):
    """The performance observatory cannot fulfil a request: profiling a
    path with no tensor-core program, fidelity attribution outside the
    2D RDG model, a regression check without a baseline, …"""


class BackendError(ReproError, ValueError):
    """An execution backend cannot fulfil a request: an unknown backend
    name (including via ``REPRO_BACKEND``), or an explicit
    ``backend="vectorized"`` combined with fault injection / ABFT
    verification, which only the per-thread interpreter supports."""


class InputValidationError(ReproError, ValueError):
    """An input grid carries values the pipeline must not ingest
    (NaN/Inf poison), or an execution-mode argument is malformed.

    Sibling of :class:`ShapeError`: the *shape* is fine but the
    *contents* are not.  Raised before any sweep starts, so poison
    never propagates silently through a matrix chain."""


class ExecutionError(ReproError, RuntimeError):
    """A batch/shard worker failed; the message carries the shard or
    grid index and row range so the failure is attributable without
    digging through a raw future traceback."""


class FaultError(ReproError, RuntimeError):
    """Fault recovery was exhausted: a corrupted tile or shard could
    not be recomputed within the recovery policy's retry budget.

    The sweep raises instead of returning — callers never observe a
    silently wrong result or a partial grid."""
