"""Fig. 8: GStencil/s and speedup across 8 kernels x 7 methods.

The speedup of each bar is computed the way the paper's caption states:
relative to the lowest-performing method on that kernel.  The driver
also aggregates the geometric means the paper's running text reports
(20.11x over cuDNN ... 1.37x over ConvStencil).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.registry import BASELINE_METHODS, EXTRA_METHODS
from repro.experiments.footprints import cached_footprint
from repro.perf.costmodel import gstencil_per_second
from repro.perf.machine import A100, MachineSpec
from repro.stencil.kernels import KERNELS, get_kernel

__all__ = ["Fig8Row", "Fig8Result", "run_fig8"]


@dataclass(frozen=True)
class Fig8Row:
    kernel: str
    method: str
    gstencil_per_s: float
    speedup: float  # vs the slowest method on this kernel


@dataclass
class Fig8Result:
    rows: list[Fig8Row] = field(default_factory=list)

    def by_kernel(self, kernel: str) -> list[Fig8Row]:
        """All rows (one per method) for one kernel."""
        return [r for r in self.rows if r.kernel == kernel]

    def perf(self, kernel: str, method: str) -> float:
        """Modelled GStencil/s of ``method`` on ``kernel``."""
        for r in self.rows:
            if r.kernel == kernel and r.method == method:
                return r.gstencil_per_s
        raise KeyError(f"no row for ({kernel}, {method})")

    def lora_speedup_over(self, method: str, kernel: str) -> float:
        """LoRAStencil / ``method`` performance ratio on one kernel."""
        return self.perf(kernel, "LoRAStencil") / self.perf(kernel, method)

    def mean_lora_speedup_over(self, method: str) -> float:
        """Arithmetic mean across kernels (the paper's "average")."""
        kernels = sorted({r.kernel for r in self.rows})
        vals = [self.lora_speedup_over(method, k) for k in kernels]
        return float(np.mean(vals))

    def minmax_lora_speedup_over(self, method: str) -> tuple[float, float]:
        """(min, max) of the per-kernel speedups over ``method``."""
        kernels = sorted({r.kernel for r in self.rows})
        vals = [self.lora_speedup_over(method, k) for k in kernels]
        return float(min(vals)), float(max(vals))

    def table_rows(self) -> list[list[str]]:
        """Kernel-by-method GStencil/s rows for table rendering."""
        kernels = list(dict.fromkeys(r.kernel for r in self.rows))
        methods = list(dict.fromkeys(r.method for r in self.rows))
        out = [["Kernel"] + methods]
        for k in kernels:
            row = [k]
            for m in methods:
                row.append(f"{self.perf(k, m):.2f}")
            out.append(row)
        return out


def run_fig8(
    kernels: list[str] | None = None,
    methods: list[str] | None = None,
    machine: MachineSpec = A100,
    include_best: bool = False,
) -> Fig8Result:
    """Model GStencil/s for every (kernel, method) pair.

    ``include_best`` adds Fig. 8's "LoRAStencil-Best" series — the
    rank-1 weight-matrix upper bound of the caption.
    """
    kernel_names = kernels or list(KERNELS)
    method_names = methods or list(BASELINE_METHODS)
    if include_best and "LoRAStencil-Best" not in method_names:
        method_names = list(method_names) + ["LoRAStencil-Best"]
    table = {**BASELINE_METHODS, **EXTRA_METHODS}
    result = Fig8Result()
    for kname in kernel_names:
        kernel = get_kernel(kname)
        perfs: dict[str, float] = {}
        for mname in method_names:
            method = table[mname](kernel)
            fp = cached_footprint(method)
            perfs[mname] = gstencil_per_second(fp, method.traits(), machine)
        floor = min(perfs.values())
        for mname in method_names:
            result.rows.append(
                Fig8Row(
                    kernel=kname,
                    method=mname,
                    gstencil_per_s=perfs[mname],
                    speedup=perfs[mname] / floor,
                )
            )
    return result
