"""Fig. 9: optimization breakdown of LoRAStencil on Box-2D9P.

Four cumulative configurations (RDG on CUDA cores, + TensorCore, + BVS,
+ AsyncCopy) across growing input sizes.  Per-point footprints are
measured once on the simulator per configuration; the size axis enters
through *wave quantization*: a grid of ``N`` points launches
``N / block`` thread blocks, and when those don't fill the GPU's
resident-block capacity evenly the tail wave runs underutilized — which
is why the paper's bars stabilize only at large inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.lorastencil import LoRAStencilMethod
from repro.core.config import OptimizationConfig
from repro.experiments.footprints import cached_footprint
from repro.perf.costmodel import time_per_point
from repro.perf.machine import A100, MachineSpec
from repro.perf.occupancy import blocks_per_sm
from repro.stencil.kernels import get_kernel

__all__ = ["Fig9Row", "Fig9Result", "run_fig9", "DEFAULT_SIZES"]

#: square-grid side lengths swept on the x axis
DEFAULT_SIZES = (256, 512, 1024, 2048, 4096, 10240)

#: outputs per thread block (Table II 2D blocking)
_BLOCK_POINTS = 32 * 64


@dataclass(frozen=True)
class Fig9Row:
    config: str
    size: int
    gstencil_per_s: float


@dataclass
class Fig9Result:
    rows: list[Fig9Row] = field(default_factory=list)

    def perf(self, config: str, size: int) -> float:
        """Modelled GStencil/s for one configuration at one size."""
        for r in self.rows:
            if r.config == config and r.size == size:
                return r.gstencil_per_s
        raise KeyError(f"no row for ({config}, {size})")

    def gain(self, after: str, before: str, size: int) -> float:
        """Speedup contributed by one optimization at one size."""
        return self.perf(after, size) / self.perf(before, size)

    def configs(self) -> list[str]:
        """Configuration labels in ladder order."""
        return list(dict.fromkeys(r.config for r in self.rows))

    def sizes(self) -> list[int]:
        """Swept grid side lengths, ascending."""
        return sorted({r.size for r in self.rows})


def _utilization(points: int, shared_bytes_per_block: int, machine: MachineSpec) -> float:
    """Fraction of the GPU kept busy by ``points / block`` thread blocks."""
    blocks = max(1, math.ceil(points / _BLOCK_POINTS))
    per_wave = max(1, machine.num_sms * max(1, blocks_per_sm(shared_bytes_per_block, machine)))
    waves = math.ceil(blocks / per_wave)
    return blocks / (waves * per_wave)


def run_fig9(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    kernel_name: str = "Box-2D9P",
    machine: MachineSpec = A100,
    measure_grid: tuple[int, int] = (128, 128),
) -> Fig9Result:
    """Model the four-configuration breakdown across input sizes."""
    kernel = get_kernel(kernel_name)
    result = Fig9Result()
    for config in OptimizationConfig.breakdown_levels():
        method = LoRAStencilMethod(kernel, config=config)
        fp = cached_footprint(method, measure_grid)
        base_t = time_per_point(fp, method.traits(), machine)
        # per-block shared footprint of the fused kernel's block tile
        h = method._engine_radius()
        k_pad = ((8 + 2 * h + 3) // 4) * 4
        w_pad = ((8 + 2 * h + 7) // 8) * 8
        smem_bytes = (32 + k_pad - 8) * (64 + w_pad - 8) * 8
        for size in sizes:
            points = size * size
            util = _utilization(points, smem_bytes, machine)
            t = base_t / util
            result.rows.append(
                Fig9Row(
                    config=config.label(),
                    size=size,
                    gstencil_per_s=1.0 / t / 1e9,
                )
            )
    return result
