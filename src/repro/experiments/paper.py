"""Paper-reported numbers (the targets EXPERIMENTS.md compares against).

Everything here is transcribed from the LoRAStencil paper text; no value
is produced by this repository's code.  The Fig. 8 *mean speedups* are
the primary cross-method targets (the paper reports per-kernel bars only
graphically); Fig. 9/10 and Table III values are quoted explicitly in
the running text.
"""

from __future__ import annotations

__all__ = ["PAPER"]

PAPER: dict[str, object] = {
    # Section V-B: mean speedup of LoRAStencil over each method (Fig. 8)
    "fig8_mean_speedup": {
        "cuDNN": 20.11,
        "AMOS": 14.45,
        "Brick": 5.54,
        "DRStencil": 2.82,
        "TCStencil": 2.48,
        "ConvStencil": 1.37,
    },
    "fig8_convstencil_speedup_min": 1.12,
    "fig8_convstencil_speedup_max": 2.16,
    # Section V-C: Fig. 9 breakdown factors on Box-2D9P (large inputs)
    "fig9_tcu_gain": 2.14,  # RDG on CUDA cores -> + TensorCore
    "fig9_bvs_gain": 4.00,  # + BVS over TCU-without-BVS
    "fig9_async_copy_gain": 1.297,  # + 29.7%
    # Section V-D: Fig. 10 shared-memory request ratios (LoRA / Conv)
    "fig10_load_ratio": 0.191,
    "fig10_store_ratio": 0.470,
    "fig10_total_reduction": 0.766,  # total requests reduced by 76.6%
    "fig10_kernels": ["Star-2D13P", "Box-2D49P", "Heat-3D", "Box-3D27P"],
    # Table III
    "table3": {
        "Box-2D49P": {
            "ConvStencil": {"ct_pct": 69.97, "ai": 3.59},
            "LoRAStencil": {"ct_pct": 86.42, "ai": 7.41},
        },
        "Box-3D27P": {
            "ConvStencil": {"ct_pct": 36.88, "ai": 1.65},
            "LoRAStencil": {"ct_pct": 49.31, "ai": 2.53},
        },
    },
    # Section III-B analysis (Eq. 14)
    "eq14_ratio_h3": 3.25,
    "eq14_eliminated_h3": 0.6923,
    "eq14_ratio_h4": 4.2,
    "eq14_eliminated_h4": 0.7619,
    # Section III-C analysis (Eq. 16)
    "eq16_mma_ratio_h3": 36 / 26,
    # Section IV-A kernel fusion
    "fusion_waste_saving": 96 / 156,  # ~61.54%
    # Section V-B vs cuDNN/AMOS
    "mean_speedup_cudnn": 20.11,
    "mean_speedup_amos": 14.45,
}
