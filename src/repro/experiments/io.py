"""JSON (de)serialization of experiment results.

Lets benchmark runs archive their structured results (not just the
rendered tables) so downstream analysis or plotting can reload them:

>>> save_result(fig8_result, "fig8.json")
>>> fig8_again = load_result("fig8.json")
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from repro.experiments.fig8 import Fig8Result, Fig8Row
from repro.experiments.fig9 import Fig9Result, Fig9Row
from repro.experiments.fig10 import Fig10Result, Fig10Row
from repro.experiments.table3 import Table3Result, Table3Row

__all__ = ["save_result", "load_result"]

_RESULT_TYPES: dict[str, tuple[type, type]] = {
    "fig8": (Fig8Result, Fig8Row),
    "fig9": (Fig9Result, Fig9Row),
    "fig10": (Fig10Result, Fig10Row),
    "table3": (Table3Result, Table3Row),
}


def _kind_of(result: Any) -> str:
    for kind, (res_type, _) in _RESULT_TYPES.items():
        if isinstance(result, res_type):
            return kind
    raise TypeError(
        f"unsupported result type {type(result).__name__}; expected one of "
        f"{[t.__name__ for t, _ in _RESULT_TYPES.values()]}"
    )


def save_result(result: Any, path: str | pathlib.Path) -> pathlib.Path:
    """Write a figure/table result to ``path`` as JSON."""
    kind = _kind_of(result)
    payload = {
        "kind": kind,
        "rows": [dataclasses.asdict(row) for row in result.rows],
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_result(path: str | pathlib.Path) -> Any:
    """Reload a result written by :func:`save_result`."""
    payload = json.loads(pathlib.Path(path).read_text())
    kind = payload.get("kind")
    if kind not in _RESULT_TYPES:
        raise ValueError(f"unknown result kind {kind!r} in {path}")
    res_type, row_type = _RESULT_TYPES[kind]
    rows = [row_type(**row) for row in payload["rows"]]
    return res_type(rows=rows)
