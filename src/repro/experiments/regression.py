"""Regression pinning of the measured footprints.

The reproduced figures rest on simulator-measured event counts that are
fully deterministic.  This module snapshots the canonical per-kernel
footprints of the two simulated systems (LoRAStencil and ConvStencil)
into a JSON file shipped with the package; the test suite compares
fresh measurements against it **exactly**, so any change to the
algorithms, the counters, or the measurement grids that would move the
paper-comparison numbers fails loudly instead of drifting silently.

Regenerate intentionally with::

    python -m repro.experiments.regression   # rewrites the snapshot
"""

from __future__ import annotations

import json
import pathlib

from repro.baselines.convstencil import ConvStencilMethod
from repro.baselines.lorastencil import LoRAStencilMethod
from repro.stencil.kernels import KERNELS

__all__ = [
    "SNAPSHOT_PATH",
    "collect_snapshot",
    "load_snapshot",
    "compare",
    "write_snapshot",
]

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "data" / "footprints.json"

_METHODS = {"LoRAStencil": LoRAStencilMethod, "ConvStencil": ConvStencilMethod}


def collect_snapshot() -> dict:
    """Measure the canonical footprint of every (method, kernel) pair."""
    out: dict = {}
    for kname, kernel in KERNELS.items():
        for mname, cls in _METHODS.items():
            method = cls(kernel)
            fp = method.footprint()
            out[f"{mname}/{kname}"] = {
                "points": fp.points,
                "counters": fp.counters.as_dict(),
            }
    return out


def load_snapshot() -> dict:
    """Read the pinned snapshot shipped with the package."""
    return json.loads(SNAPSHOT_PATH.read_text())


def compare(measured: dict, pinned: dict) -> list[str]:
    """Human-readable list of deviations (empty = exact match)."""
    problems: list[str] = []
    for key in sorted(set(pinned) | set(measured)):
        if key not in pinned:
            problems.append(f"{key}: missing from pinned snapshot")
            continue
        if key not in measured:
            problems.append(f"{key}: missing from measurement")
            continue
        a, b = measured[key], pinned[key]
        if a["points"] != b["points"]:
            problems.append(
                f"{key}: points {a['points']} != pinned {b['points']}"
            )
        for counter, value in b["counters"].items():
            got = a["counters"].get(counter, 0)
            if got != value:
                problems.append(
                    f"{key}: {counter} {got} != pinned {value}"
                )
    return problems


def write_snapshot() -> pathlib.Path:
    """Regenerate the pinned snapshot (an intentional act)."""
    SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
    SNAPSHOT_PATH.write_text(json.dumps(collect_snapshot(), indent=1) + "\n")
    return SNAPSHOT_PATH


if __name__ == "__main__":  # pragma: no cover
    print(f"wrote {write_snapshot()}")
