"""Table III: compute throughput and arithmetic intensity.

CT (Compute/SM Throughput %) and AI (FLOP per DRAM byte) for
ConvStencil and LoRAStencil on Box-2D49P and Box-3D27P, from the same
footprints the other figures use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.convstencil import ConvStencilMethod
from repro.baselines.lorastencil import LoRAStencilMethod
from repro.experiments.footprints import cached_footprint
from repro.perf.machine import A100, MachineSpec
from repro.perf.metrics import arithmetic_intensity, compute_throughput_pct
from repro.stencil.kernels import get_kernel

__all__ = ["Table3Row", "Table3Result", "run_table3", "TABLE3_KERNELS"]

TABLE3_KERNELS = ("Box-2D49P", "Box-3D27P")


@dataclass(frozen=True)
class Table3Row:
    kernel: str
    method: str
    ct_pct: float
    ai: float


@dataclass
class Table3Result:
    rows: list[Table3Row] = field(default_factory=list)

    def row(self, kernel: str, method: str) -> Table3Row:
        """The CT/AI entry of one (kernel, method) pair."""
        for r in self.rows:
            if r.kernel == kernel and r.method == method:
                return r
        raise KeyError(f"no row for ({kernel}, {method})")

    def ai_ratio(self, kernel: str) -> float:
        """LoRAStencil AI over ConvStencil AI (the shape claim)."""
        return self.row(kernel, "LoRAStencil").ai / self.row(kernel, "ConvStencil").ai


def run_table3(
    kernels: tuple[str, ...] = TABLE3_KERNELS,
    machine: MachineSpec = A100,
) -> Table3Result:
    """Compute CT% and AI for ConvStencil and LoRAStencil."""
    result = Table3Result()
    for kname in kernels:
        kernel = get_kernel(kname)
        for cls in (ConvStencilMethod, LoRAStencilMethod):
            method = cls(kernel)
            fp = cached_footprint(method)
            result.rows.append(
                Table3Row(
                    kernel=kname,
                    method=method.name,
                    ct_pct=compute_throughput_pct(
                        fp, method.traits(), machine, tensor_cores=True
                    ),
                    ai=arithmetic_intensity(fp),
                )
            )
    return result
