"""Grid-size sweeps: performance as a function of problem size.

Generalizes Fig. 9's size axis to any method pair: per-point footprints
are measured once per method, and the size dependence enters through the
same wave-quantization utilization model — small grids cannot fill the
GPU's resident-block capacity, large ones saturate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import StencilMethod
from repro.baselines.registry import get_method
from repro.experiments.fig9 import _utilization
from repro.experiments.footprints import cached_footprint
from repro.perf.costmodel import time_per_point
from repro.perf.machine import A100, MachineSpec
from repro.stencil.kernels import get_kernel

__all__ = ["SweepPoint", "SweepResult", "run_size_sweep", "DEFAULT_SWEEP_SIZES"]

DEFAULT_SWEEP_SIZES = (256, 512, 1024, 2048, 4096, 10240)

#: shared-memory footprint charged per block in the utilization model
_BLOCK_SMEM_BYTES = 20 * 1024


@dataclass(frozen=True)
class SweepPoint:
    """One (method, size) sample."""

    method: str
    size: int
    gstencil_per_s: float
    utilization: float


@dataclass
class SweepResult:
    """A full size sweep over several methods on one kernel."""

    kernel: str
    rows: list[SweepPoint] = field(default_factory=list)

    def perf(self, method: str, size: int) -> float:
        """Modelled GStencil/s of ``method`` at one grid size."""
        for r in self.rows:
            if r.method == method and r.size == size:
                return r.gstencil_per_s
        raise KeyError(f"no point for ({method}, {size})")

    def methods(self) -> list[str]:
        """Swept method names, first-seen order."""
        return list(dict.fromkeys(r.method for r in self.rows))

    def sizes(self) -> list[int]:
        """Swept grid sides, ascending."""
        return sorted({r.size for r in self.rows})

    def speedup_series(self, numer: str, denom: str) -> list[tuple[int, float]]:
        """``numer``/``denom`` performance ratio at every size."""
        return [
            (s, self.perf(numer, s) / self.perf(denom, s)) for s in self.sizes()
        ]


def run_size_sweep(
    kernel_name: str,
    methods: tuple[str, ...] = ("ConvStencil", "LoRAStencil"),
    sizes: tuple[int, ...] = DEFAULT_SWEEP_SIZES,
    machine: MachineSpec = A100,
) -> SweepResult:
    """Model every (method, size) point for one 2D kernel."""
    kernel = get_kernel(kernel_name)
    if kernel.weights.ndim != 2:
        raise ValueError(
            f"size sweeps are defined for 2D kernels, {kernel.name} is "
            f"{kernel.weights.ndim}D"
        )
    result = SweepResult(kernel=kernel_name)
    for mname in methods:
        method: StencilMethod = get_method(mname, kernel)
        fp = cached_footprint(method)
        base_t = time_per_point(fp, method.traits(), machine)
        for size in sizes:
            util = _utilization(size * size, _BLOCK_SMEM_BYTES, machine)
            result.rows.append(
                SweepPoint(
                    method=mname,
                    size=size,
                    gstencil_per_s=1.0 / (base_t / util) / 1e9,
                    utilization=util,
                )
            )
    return result
