"""Plain-text table rendering for the benchmark harnesses."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(rows: list[list[str]], title: str | None = None) -> str:
    """Render rows (first row = header) as an aligned ASCII table."""
    if not rows:
        return ""
    widths = [
        max(len(str(row[i])) for row in rows if i < len(row))
        for i in range(max(len(r) for r in rows))
    ]

    def fmt(row: list[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(rows[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(r) for r in rows[1:])
    return "\n".join(lines)
