"""Footprint measurement with in-process caching.

Simulated footprints (LoRAStencil, ConvStencil) take seconds to measure;
every figure driver shares one cache keyed by (method, kernel, grid).
"""

from __future__ import annotations

from repro.baselines.base import FootprintScale, StencilMethod

__all__ = ["cached_footprint", "clear_cache"]

_CACHE: dict[tuple[str, str, tuple[int, ...] | None], FootprintScale] = {}


def cached_footprint(
    method: StencilMethod,
    grid_shape: tuple[int, ...] | None = None,
) -> FootprintScale:
    """Measure (or fetch) the method's footprint for ``grid_shape``."""
    variant = getattr(method, "config", None)
    key = (
        type(method).__name__,
        variant.label() if variant is not None else "",
        method.kernel.name,
        grid_shape,
    )
    if key not in _CACHE:
        _CACHE[key] = method.footprint(grid_shape)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop every cached footprint (used by tests)."""
    _CACHE.clear()
