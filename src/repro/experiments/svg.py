"""Dependency-free SVG charts for the figure artifacts.

matplotlib is not available offline, so the benches emit the paper's
figures as hand-rolled SVG: grouped bars for Fig. 8, log-x line series
for Fig. 9.  The output is deliberately simple — enough to eyeball the
reproduced shapes in any browser.
"""

from __future__ import annotations

import math

__all__ = ["grouped_bar_chart", "line_chart"]

_COLORS = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
    "#59a14f", "#edc948", "#b07aa1", "#9c755f",
]


def _esc(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def grouped_bar_chart(
    groups: list[str],
    series: dict[str, list[float]],
    title: str = "",
    ylabel: str = "",
    width: int = 960,
    height: int = 420,
) -> str:
    """Grouped vertical bars: one cluster per group, one bar per series."""
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(vals)} values for {len(groups)} groups"
            )
    margin_l, margin_b, margin_t = 60, 70, 40
    plot_w, plot_h = width - margin_l - 20, height - margin_b - margin_t
    vmax = max((max(v) for v in series.values()), default=1.0) or 1.0
    n_groups, n_series = len(groups), len(series)
    group_w = plot_w / max(1, n_groups)
    bar_w = group_w * 0.8 / max(1, n_series)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="14">{_esc(title)}</text>',
        f'<text x="15" y="{margin_t + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 15 {margin_t + plot_h / 2})">{_esc(ylabel)}</text>',
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" stroke="black"/>',
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="black"/>',
    ]
    for tick in range(5):
        v = vmax * tick / 4
        y = margin_t + plot_h * (1 - tick / 4)
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4}" text-anchor="end">{v:.0f}</text>'
        )
        parts.append(
            f'<line x1="{margin_l}" y1="{y}" x2="{margin_l + plot_w}" y2="{y}" '
            f'stroke="#ddd"/>'
        )
    for gi, group in enumerate(groups):
        gx = margin_l + gi * group_w + group_w * 0.1
        for si, (name, vals) in enumerate(series.items()):
            h = plot_h * vals[gi] / vmax
            x = gx + si * bar_w
            y = margin_t + plot_h - h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{_COLORS[si % len(_COLORS)]}">'
                f"<title>{_esc(name)} / {_esc(group)}: {vals[gi]:.2f}</title></rect>"
            )
        parts.append(
            f'<text x="{gx + group_w * 0.4}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle">{_esc(group)}</text>'
        )
    for si, name in enumerate(series):
        lx = margin_l + si * 120
        ly = height - 18
        parts.append(
            f'<rect x="{lx}" y="{ly - 10}" width="10" height="10" '
            f'fill="{_COLORS[si % len(_COLORS)]}"/>'
        )
        parts.append(f'<text x="{lx + 14}" y="{ly}">{_esc(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def line_chart(
    x_values: list[float],
    series: dict[str, list[float]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    log_x: bool = False,
    width: int = 820,
    height: int = 420,
) -> str:
    """Line series over a shared (optionally log-scaled) x axis."""
    for name, vals in series.items():
        if len(vals) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(vals)} values for {len(x_values)} x"
            )
    margin_l, margin_b, margin_t = 60, 60, 40
    plot_w, plot_h = width - margin_l - 20, height - margin_b - margin_t
    xs = [math.log10(x) for x in x_values] if log_x else list(x_values)
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0
    vmax = max((max(v) for v in series.values()), default=1.0) or 1.0

    def px(x: float) -> float:
        return margin_l + plot_w * (x - x_lo) / x_span

    def py(v: float) -> float:
        return margin_t + plot_h * (1 - v / vmax)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="14">{_esc(title)}</text>',
        f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle">'
        f"{_esc(xlabel)}</text>",
        f'<text x="15" y="{margin_t + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 15 {margin_t + plot_h / 2})">{_esc(ylabel)}</text>',
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" stroke="black"/>',
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="black"/>',
    ]
    for xv, xs_i in zip(x_values, xs):
        parts.append(
            f'<text x="{px(xs_i):.1f}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle">{_esc(xv)}</text>'
        )
    for tick in range(5):
        v = vmax * tick / 4
        parts.append(
            f'<text x="{margin_l - 6}" y="{py(v) + 4:.1f}" '
            f'text-anchor="end">{v:.0f}</text>'
        )
    for si, (name, vals) in enumerate(series.items()):
        pts = " ".join(f"{px(x):.1f},{py(v):.1f}" for x, v in zip(xs, vals))
        color = _COLORS[si % len(_COLORS)]
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        lx, ly = margin_l + si * 150, height - 24
        parts.append(f'<rect x="{lx}" y="{ly - 10}" width="10" height="10" fill="{color}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly}">{_esc(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
