"""Experiment harness: one driver per paper figure/table.

Each driver assembles method footprints (measured on the TCU simulator
or analytic), runs them through the cost model, and returns structured
rows mirroring the paper's plots.  ``benchmarks/`` wraps these drivers
in pytest-benchmark targets; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments.paper import PAPER
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.report import format_table
from repro.experiments.sweep import SweepResult, run_size_sweep
from repro.experiments.io import load_result, save_result

__all__ = [
    "PAPER",
    "Fig8Result",
    "run_fig8",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "Table3Result",
    "run_table3",
    "format_table",
    "SweepResult",
    "run_size_sweep",
    "save_result",
    "load_result",
]
