"""Fig. 10: shared-memory requests, ConvStencil vs LoRAStencil.

Both methods run their full simulated sweeps on the four kernels the
paper profiles (Star-2D13P, Box-2D49P, Heat-3D, Box-3D27P); the
simulator's request counters play the role of Nsight Compute.  Counts
are normalized per million point-updates so kernels of different
measurement grids are comparable on one axis, exactly like the paper's
log-scale bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.convstencil import ConvStencilMethod
from repro.baselines.lorastencil import LoRAStencilMethod
from repro.experiments.footprints import cached_footprint
from repro.stencil.kernels import get_kernel

__all__ = ["Fig10Row", "Fig10Result", "run_fig10", "FIG10_KERNELS"]

FIG10_KERNELS = ("Star-2D13P", "Box-2D49P", "Heat-3D", "Box-3D27P")


@dataclass(frozen=True)
class Fig10Row:
    kernel: str
    method: str
    #: shared-memory requests per million point-updates
    loads: float
    stores: float

    @property
    def total(self) -> float:
        return self.loads + self.stores


@dataclass
class Fig10Result:
    rows: list[Fig10Row] = field(default_factory=list)

    def row(self, kernel: str, method: str) -> Fig10Row:
        """The request counts of one (kernel, method) pair."""
        for r in self.rows:
            if r.kernel == kernel and r.method == method:
                return r
        raise KeyError(f"no row for ({kernel}, {method})")

    def ratio(self, kernel: str, what: str = "loads") -> float:
        """LoRAStencil / ConvStencil request ratio for one kernel."""
        lora = self.row(kernel, "LoRAStencil")
        conv = self.row(kernel, "ConvStencil")
        return getattr(lora, what) / getattr(conv, what)

    def mean_ratio(self, what: str = "loads") -> float:
        """Mean LoRA/Conv ratio across the profiled kernels."""
        kernels = sorted({r.kernel for r in self.rows})
        vals = [self.ratio(k, what) for k in kernels]
        return sum(vals) / len(vals)


def run_fig10(kernels: tuple[str, ...] = FIG10_KERNELS) -> Fig10Result:
    """Measure shared-memory request counts for both methods."""
    result = Fig10Result()
    for kname in kernels:
        kernel = get_kernel(kname)
        for cls in (ConvStencilMethod, LoRAStencilMethod):
            method = cls(kernel)
            fp = cached_footprint(method)
            per_pt = fp.per_point()
            result.rows.append(
                Fig10Row(
                    kernel=kname,
                    method=method.name,
                    loads=per_pt["shared_load_requests"] * 1e6,
                    stores=per_pt["shared_store_requests"] * 1e6,
                )
            )
    return result
