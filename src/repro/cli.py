"""Command-line interface.

::

    python -m repro kernels                 # Table II zoo
    python -m repro decompose Box-2D49P     # PMA pyramid of a kernel
    python -m repro plan Box-2D49P [--json] # compiled plan + cache stats
    python -m repro run Box-2D49P --size 64 # simulated sweep + events
    python -m repro profile Heat-2D --emit trace.json  # span tree + trace
    python -m repro profile Box-2D9P --per-instr  # per-opcode/term attribution
    python -m repro stats [--prometheus]    # metrics registry + cache stats
    python -m repro perf check --baseline BENCH_baseline.json  # regression gate
    python -m repro perf diff a.json b.json # compare two run-records
    python -m repro perf fidelity Box-2D9P  # paper equations vs measured
    python -m repro perf trend --measure    # rolling median/MAD timing gate
    python -m repro monitor health.json     # tail a running sharded sweep
    python -m repro fig8 [--kernels ...]    # figure/table drivers
    python -m repro fig9 / fig10 / table3
    python -m repro precision Heat-2D       # FP16 vs FP64 error growth
    python -m repro scaling --devices 4     # multi-GPU scaling model

``run``/``fig8``/``fig9``/``fig10``/``table3`` accept ``--telemetry``
to print a span-tree/metrics epilogue; ``run`` and ``plan`` accept
``--json`` for machine-readable run-record output (schema
``repro.telemetry.run-record/v1``, see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LoRAStencil (SC'24) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the Table II benchmark kernels")

    p = sub.add_parser("decompose", help="show a kernel's PMA/SVD pyramid")
    p.add_argument("kernel")

    p = sub.add_parser("plan", help="show a kernel's compiled execution plan")
    p.add_argument("kernel")
    p.add_argument("--no-tensor-cores", action="store_true",
                   help="plan for the CUDA-core fallback path")
    p.add_argument("--schedule", default=None, metavar="NAME",
                   help="instruction schedule to lower with "
                        "(eager, prefetch, or a registered name)")
    _add_backend_flag(p)
    p.add_argument("--ir", action="store_true",
                   help="dump the lowered tile program(s)")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable run-record instead of text")

    p = sub.add_parser("run", help="simulated sweep of one kernel")
    p.add_argument("kernel")
    p.add_argument("--size", type=int, default=64, help="grid edge (default 64)")
    p.add_argument("--seed", type=int, default=0)
    _add_backend_flag(p)
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable run-record instead of text")
    _add_telemetry_flag(p)

    p = sub.add_parser(
        "profile",
        help="run one kernel under tracing and print the span tree",
    )
    p.add_argument("kernel")
    p.add_argument("--size", type=int, default=64, help="grid edge (default 64)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="shard the sweep over a thread pool (default 1)")
    p.add_argument("--emit", default=None, metavar="PATH",
                   help="write Chrome trace-event JSON "
                        "(open in chrome://tracing or Perfetto)")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="write a structured JSON run-record")
    p.add_argument("--per-instr", action="store_true",
                   help="attribute events per TileProgram instruction "
                        "(opcode / rank-1 term tables; single shard only)")
    _add_backend_flag(p)

    p = sub.add_parser(
        "stats", help="dump the metrics registry and plan-cache stats"
    )
    p.add_argument("--prometheus", action="store_true",
                   help="Prometheus text exposition format")
    p.add_argument("--json", action="store_true",
                   help="JSON snapshot of the registry")

    p = sub.add_parser(
        "perf",
        help="performance observatory: regression gate, record diffs, "
             "model fidelity",
    )
    perf_sub = p.add_subparsers(dest="perf_command", required=True)

    pc = perf_sub.add_parser(
        "check",
        help="run the reference workload and gate against a baseline "
             "run-record (exit 1 on regression, 2 on missing baseline)",
    )
    pc.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline run-record (default BENCH_baseline.json)")
    pc.add_argument("--update-baseline", action="store_true",
                    help="measure and (over)write the baseline instead of "
                         "checking against it")
    pc.add_argument("--kernel", default=None,
                    help="workload kernel (default: the baseline's)")
    pc.add_argument("--size", type=int, default=None,
                    help="grid edge (default: the baseline's)")
    pc.add_argument("--seed", type=int, default=None,
                    help="input seed (default: the baseline's)")
    pc.add_argument("--threshold", type=float, default=None,
                    help="relative counter-growth tolerance (default 0.01)")
    pc.add_argument("--time-threshold", type=float, default=None,
                    help="also gate wall time at this relative tolerance "
                         "(timing is advisory when omitted)")
    _add_backend_flag(pc)
    pc.add_argument("--min-speedup", type=float, default=None, metavar="X",
                    help="require baseline_time / current_time >= X "
                         "(e.g. 10 to pin the vectorized backend's win)")
    pc.add_argument("--record", default=None, metavar="DIR",
                    help="append the measured record to this history dir")
    pc.add_argument("--json", action="store_true",
                    help="emit the comparison as JSON")

    pd = perf_sub.add_parser(
        "diff",
        help="compare two run-record files (exit 1 when the second "
             "regressed relative to the first)",
    )
    pd.add_argument("baseline", help="baseline .json record (or .jsonl history)")
    pd.add_argument("current", help="current .json record (or .jsonl history)")
    pd.add_argument("--threshold", type=float, default=None,
                    help="relative counter-growth tolerance (default 0.01)")
    pd.add_argument("--time-threshold", type=float, default=None,
                    help="also gate extra.timing_s at this tolerance")
    pd.add_argument("--json", action="store_true",
                    help="emit the comparison as JSON")

    pf = perf_sub.add_parser(
        "fidelity",
        help="paper-model fidelity: Eq. 12/14/16 predictions vs "
             "measured events",
    )
    pf.add_argument("kernel")
    pf.add_argument("--size", type=int, default=64,
                    help="grid edge (default 64)")
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--output", default=None, metavar="PATH",
                    help="also write the fidelity report as JSON")
    pf.add_argument("--json", action="store_true",
                    help="print the report as JSON instead of a table")

    ph = perf_sub.add_parser(
        "history", help="list the run-record history store"
    )
    ph.add_argument("name", nargs="?", default=None,
                    help="show this record name's entries (default: list names)")
    ph.add_argument("--root", default="benchmarks/results/records/history",
                    metavar="DIR")

    pt = perf_sub.add_parser(
        "trend",
        help="statistical timing gate: latest run vs the rolling "
             "median/MAD of the record history (exit 1 regressed, "
             "2 insufficient history)",
    )
    pt.add_argument("name", nargs="?", default=None,
                    help="history record name (default: the reference "
                         "workload's perf-check record)")
    pt.add_argument("--root", default="benchmarks/results/records/history",
                    metavar="DIR", help="history store directory")
    pt.add_argument("--measure", action="store_true",
                    help="measure the reference workload first and append "
                         "it to the history (the gated point)")
    pt.add_argument("--repeats", type=int, default=3,
                    help="sweep repetitions per measurement; the median "
                         "timing is stamped (default 3)")
    pt.add_argument("--kernel", default=None,
                    help="workload kernel for --measure")
    pt.add_argument("--size", type=int, default=None,
                    help="grid edge for --measure")
    pt.add_argument("--seed", type=int, default=None,
                    help="input seed for --measure")
    pt.add_argument("--metric", default="timing_s",
                    help="extra.<metric> to gate (default timing_s)")
    pt.add_argument("--direction", choices=["above", "below"],
                    default="above",
                    help="'above' flags values rising past the gate "
                         "(timings, imbalance); 'below' flags values "
                         "falling under it (overlap efficiency)")
    pt.add_argument("--window", type=int, default=None,
                    help="rolling window size (default 8)")
    pt.add_argument("--mad-scale", type=float, default=None,
                    help="MAD sigma multiplier (default 4.0)")
    pt.add_argument("--rel-floor", type=float, default=None,
                    help="minimum relative allowance (default 0.05)")
    _add_backend_flag(pt)
    pt.add_argument("--json", action="store_true",
                    help="emit the verdict as JSON")

    p = sub.add_parser("fig8", help="state-of-the-art comparison")
    p.add_argument("--kernels", nargs="*", default=None)
    p.add_argument("--best", action="store_true",
                   help="include the rank-1 LoRAStencil-Best series")
    _add_telemetry_flag(p)

    _add_telemetry_flag(sub.add_parser(
        "fig9", help="optimization breakdown (Box-2D9P)"))
    _add_telemetry_flag(sub.add_parser(
        "fig10", help="shared-memory request comparison"))
    _add_telemetry_flag(sub.add_parser(
        "table3", help="compute throughput / arithmetic intensity"))

    p = sub.add_parser("precision", help="FP16 vs FP64 error growth")
    p.add_argument("kernel")
    p.add_argument("--steps", type=int, nargs="*", default=[1, 2, 4, 8, 16])

    p = sub.add_parser("scaling", help="multi-GPU scaling model")
    p.add_argument("--kernel", default="Box-2D9P")
    p.add_argument("--size", type=int, default=4096)
    p.add_argument("--devices", type=int, nargs="*", default=[1, 2, 4, 8])

    p = sub.add_parser("autotune", help="search fusion/tile configurations")
    p.add_argument("kernel")

    p = sub.add_parser("convergence", help="heat-equation convergence study")
    p.add_argument("--resolutions", type=int, nargs="*", default=[12, 24, 48])

    p = sub.add_parser("codegen", help="emit the CUDA kernel for a stencil")
    p.add_argument("kernel")
    p.add_argument("--output", default=None, help="file to write (default: stdout)")
    p.add_argument("--no-bvs", action="store_true")

    p = sub.add_parser(
        "chaos",
        help="deterministic fault injection with ABFT detection/recovery",
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)
    cr = chaos_sub.add_parser(
        "run",
        help="inject a seeded fault campaign into one kernel's sweep",
    )
    cr.add_argument("kernel")
    cr.add_argument("--size", type=int, default=64)
    cr.add_argument("--seed", type=int, default=0,
                    help="seed for both the grid and the fault plan")
    cr.add_argument("--faults", type=int, default=4,
                    help="number of faults in the campaign")
    cr.add_argument("--kinds", nargs="*", default=None,
                    help="restrict fault kinds (default: all applicable)")
    cr.add_argument("--shards", type=int, default=1)
    cr.add_argument("--sticky", action="store_true",
                    help="faults re-fire on recovery attempts "
                         "(exercises the FaultError exhaustion path)")
    cr.add_argument("--no-verify", action="store_true",
                    help="negative control: inject without ABFT verification")
    cr.add_argument("--json", action="store_true")
    cr.add_argument("--record", default=None, metavar="PATH",
                    help="write a run-record (with faults, trace, event-log "
                         "and health sections) to PATH")
    cr.add_argument("--events", default=None, metavar="PATH",
                    help="write the structured event log as JSONL to PATH")
    cp = chaos_sub.add_parser(
        "report",
        help="print the faults sections of run-record files",
    )
    cp.add_argument("paths", nargs="+")
    cp.add_argument("--json", action="store_true")

    p = sub.add_parser(
        "cluster",
        help="distributed sweep: partition, temporal rounds, overlap, "
             "recovery, per-rank observatory",
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)
    clr = cluster_sub.add_parser(
        "run",
        help="execute one distributed sweep and check it against the "
             "dense reference",
    )
    _add_cluster_run_args(clr)
    clr.add_argument("--json", action="store_true")
    clr.add_argument("--record", default=None, metavar="PATH",
                     help="write a validated run-record (counters, faults, "
                          "halo-byte ledger, trace/events/health, cluster "
                          "report) to PATH")
    clr.add_argument("--record-history", default=None, metavar="DIR",
                     help="also append the run-record to this history "
                          "store (joins the repro perf trend trajectory)")
    clr.add_argument("--events", default=None, metavar="PATH",
                     help="write the structured event log as JSONL to PATH")
    clr.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="snapshot the run into DIR at temporal-round "
                          "barriers (resumable with `repro cluster resume`)")
    clr.add_argument("--checkpoint-every", type=int, default=1,
                     metavar="N",
                     help="checkpoint every N rounds (default 1)")
    clr.add_argument("--halt-after-round", type=int, default=None,
                     metavar="ROUND",
                     help="deterministic mid-run kill: checkpoint after "
                          "ROUND completes, then exit 3 (tests resume)")
    crs = cluster_sub.add_parser(
        "resume",
        help="resume a checkpointed distributed sweep and prove the "
             "completed trajectory bit-identical to an uninterrupted run",
    )
    crs.add_argument("--checkpoint-dir", required=True, metavar="DIR",
                     help="directory written by `cluster run "
                          "--checkpoint-dir`")
    crs.add_argument("--round", type=int, default=None, metavar="ROUND",
                     help="resume from this round's checkpoint "
                          "(default: the latest)")
    crs.add_argument("--json", action="store_true")
    crs.add_argument("--record", default=None, metavar="PATH",
                     help="write a validated run-record (with resilience "
                          "section) to PATH")
    crs.add_argument("--record-history", default=None, metavar="DIR",
                     help="append the run-record to this history store")
    crs.add_argument("--events", default=None, metavar="PATH",
                     help="write the structured event log as JSONL to PATH")
    crp = cluster_sub.add_parser(
        "report",
        help="run one traced distributed sweep and print the cluster "
             "observatory report (per-rank Gantt, critical path, overlap "
             "efficiency, imbalance, halo attribution)",
    )
    _add_cluster_run_args(crp)
    crp.add_argument("--json", action="store_true",
                     help="print the full ClusterReport JSON instead of "
                          "the ASCII Gantt")
    crp.add_argument("--gantt-width", type=int, default=72, metavar="COLS",
                     help="timeline width in characters (default 72)")
    crp.add_argument("--output", default=None, metavar="PATH",
                     help="also write the ClusterReport as JSON")
    crp.add_argument("--chrome-trace", default=None, metavar="PATH",
                     help="write per-rank timeline lanes as a Chrome "
                          "trace-event file")
    crp.add_argument("--record", default=None, metavar="PATH",
                     help="write a v4 run-record embedding the report's "
                          "cluster section to PATH")
    crp.add_argument("--record-history", default=None, metavar="DIR",
                     help="append a cluster-report-<kernel> record "
                          "(overlap_efficiency / imbalance metrics in "
                          "extra) to this history store for trend gating")

    p = sub.add_parser(
        "monitor",
        help="tail the live shard-health snapshot of a running sweep",
    )
    p.add_argument("path", nargs="?", default=None,
                   help="health snapshot file (default: $REPRO_HEALTH_FILE)")
    p.add_argument("--interval", type=float, default=0.5,
                   help="poll interval in seconds (default 0.5)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="give up after this many seconds (default 30)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="print raw snapshot JSON instead of the table")

    p = sub.add_parser("trace", help="print the warp-op trace of one tile")
    p.add_argument("kernel")
    p.add_argument("--limit", type=int, default=80)

    sub.add_parser("verify", help="quick end-to-end self-check of all engines")
    return parser


def _add_telemetry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="trace the command and print a span-tree/metrics epilogue",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend: interpreter, vectorized, or oracle "
             "(default: REPRO_BACKEND, else interpreter)",
    )


def _add_cluster_run_args(parser: argparse.ArgumentParser) -> None:
    """The run-configuration flags ``cluster run`` / ``report`` share."""
    parser.add_argument("kernel")
    parser.add_argument("--size", type=int, default=32,
                        help="grid extent per dimension (default 32)")
    parser.add_argument("--mesh", type=int, nargs="+", default=None,
                        metavar="N",
                        help="device mesh, one integer per grid dimension "
                             "(default: 2 per splittable dimension)")
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--block-steps", type=int, default=1,
                        help="local steps per halo exchange "
                             "(temporal blocking)")
    parser.add_argument("--tiling", choices=["trapezoid", "diamond"],
                        default="trapezoid")
    parser.add_argument("--boundary", choices=["constant", "periodic"],
                        default="constant")
    parser.add_argument("--overlap", action="store_true",
                        help="overlap the halo transfer with the interior "
                             "sweep (cp.async-modeled double buffering)")
    parser.add_argument("--executor",
                        choices=["serial", "thread", "process"],
                        default="serial")
    parser.add_argument("--simulate", action="store_true",
                        help="run the tensor-core simulation per rank "
                             "(collects EventCounters)")
    _add_backend_flag(parser)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--crash-rank", type=int, default=None,
                        metavar="RANK",
                        help="inject one shard_crash on RANK and require "
                             "recovery to the fault-free bits")
    parser.add_argument("--halo-corrupt-round", type=int, default=None,
                        metavar="ROUND",
                        help="corrupt one exchanged halo window in flight "
                             "at exchange ROUND; strip checksums must "
                             "detect it and retransmission must recover "
                             "the fault-free bits")
    parser.add_argument("--kill-rank", type=int, default=None,
                        metavar="RANK",
                        help="inject a sticky rank_crash on RANK (fires "
                             "on every retry; pair with --elastic to "
                             "re-partition around the dead rank)")
    parser.add_argument("--elastic", action="store_true",
                        help="when a rank exhausts its recovery ladder, "
                             "drop it and re-partition the grid over the "
                             "survivors (bit-identical output)")


def _cmd_kernels() -> int:
    from repro.experiments.report import format_table
    from repro.stencil.kernels import KERNELS

    rows = [["Kernel", "Points", "Problem Size", "Iterations", "Blocking"]]
    for k in KERNELS.values():
        rows.append(
            [
                k.name,
                str(k.points),
                "x".join(map(str, k.problem_size)),
                str(k.iterations),
                "x".join(map(str, k.blocking)),
            ]
        )
    print(format_table(rows, "Table II — benchmark kernels"))
    return 0


def _cmd_decompose(kernel_name: str) -> int:
    from repro.core.lowrank import decompose
    from repro.stencil.kernels import get_kernel

    k = get_kernel(kernel_name)
    if k.weights.ndim == 1:
        print(f"{k.name} is 1D: a single banded matrix, no decomposition "
              "needed (Section IV-C)")
        return 0
    matrices = (
        [k.weights.as_matrix()]
        if k.weights.ndim == 2
        else list(k.weights.planes())
    )
    for i, w in enumerate(matrices):
        label = k.name if len(matrices) == 1 else f"{k.name} plane {i}"
        if np.count_nonzero(w) <= 1:
            print(f"{label}: single-point plane -> CUDA cores (Alg. 2)")
            continue
        d = decompose(w)
        terms = ", ".join(
            "1x1 apex" if t.is_scalar else f"{t.size}x{t.size}" for t in d.terms
        )
        print(f"{label}: method={d.method}, rank={d.rank}, terms=[{terms}], "
              f"reconstruction error={d.max_error(w):.2e}")
    return 0


def _sweep_shape(ndim: int, size: int) -> tuple[int, ...]:
    """Grid shape conventions shared by ``run`` and ``profile``."""
    if ndim == 1:
        return (size * size,)
    if ndim == 2:
        return (size, size)
    return (min(size, 8), size, size)


def _cmd_run(
    kernel_name: str,
    size: int,
    seed: int,
    as_json: bool = False,
    backend: str | None = None,
) -> int:
    import json

    from repro.baselines.lorastencil import LoRAStencilMethod
    from repro.stencil.kernels import get_kernel

    k = get_kernel(kernel_name)
    method = LoRAStencilMethod(k)
    shape = _sweep_shape(k.weights.ndim, size)
    out, events = method.simulated_sweep(shape, seed=seed, backend=backend)
    used_backend = backend or method.plan.backend
    if as_json:
        from repro import telemetry

        record = telemetry.run_record(
            k.name,
            counters=events,
            extra={
                "command": "run",
                "size": size,
                "seed": seed,
                "shape": list(shape),
                "plan_key": method.plan.key,
                "method": method.plan.method,
                "rank": method.plan.rank,
                "backend": used_backend,
                "arithmetic_intensity": events.arithmetic_intensity(),
            },
        )
        telemetry.validate_run_record(record)
        print(json.dumps(record, indent=1, sort_keys=True))
        return 0
    print(f"{k.name}: simulated sweep over {shape} "
          f"({'fused 3x, ' if method.steps_per_sweep > 1 else ''}"
          f"engine radius {method._engine_radius()})")
    print(f"  plan {method.plan.key[:16]}…  "
          f"({method.plan.method}, rank {method.plan.rank}, "
          f"backend {used_backend})")
    for name, value in events.as_dict().items():
        if value:
            print(f"  {name:28s} {value:>12,}")
    print(f"  arithmetic intensity          {events.arithmetic_intensity():12.2f}")
    return 0


def _cmd_profile(
    kernel_name: str,
    size: int,
    seed: int,
    shards: int,
    emit: str | None,
    record_path: str | None,
    per_instr: bool = False,
    backend: str | None = None,
) -> int:
    from repro import telemetry
    from repro.runtime import DEFAULT_PLAN_CACHE
    from repro.runtime import compile as compile_stencil
    from repro.stencil.kernels import get_kernel

    if per_instr and shards > 1:
        print("profile: --per-instr requires a single shard (profiler "
              "accumulators are per-thread)", file=sys.stderr)
        return 2
    k = get_kernel(kernel_name)
    telemetry.reset()
    telemetry.enable()
    try:
        with telemetry.TRACER.span(
            "profile", category="cli", kernel=k.name, size=size
        ) as root:
            with telemetry.span("setup", category="cli"):
                rng = np.random.default_rng(seed)
                shape = _sweep_shape(k.weights.ndim, size)
                x = np.pad(rng.normal(size=shape), k.weights.radius)
            compiled = compile_stencil(k.weights, backend=backend)
            out, events = compiled.apply_simulated(x, shards=shards)
    finally:
        telemetry.disable()

    print(f"{k.name}: profiled sweep over {shape}, plan "
          f"{compiled.key[:16]}… ({compiled.plan.method}, "
          f"rank {compiled.plan.rank}, backend {compiled.plan.backend})")
    print(f"lowering: {compiled.lowered.describe()}")
    for name, seconds in compiled.lowered.pass_times:
        print(f"  pass {name:<16} {seconds * 1e3:8.3f} ms")
    print()
    print(root.render_tree())
    print()
    print("hardware events:")
    for name, value in events.as_dict().items():
        if value:
            print(f"  {name:28s} {value:>12,}")
    print(f"  arithmetic intensity          {events.arithmetic_intensity():12.2f}")
    profile = None
    mismatch = False
    if per_instr:
        profile = compiled.profile(x)
        print()
        print(profile.render())
        mismatch = profile.total_events.as_dict() != events.as_dict()
        print()
        if mismatch:
            print("per-instruction totals DO NOT match the uninstrumented "
                  "sweep — attribution is leaking events", file=sys.stderr)
        else:
            print("per-instruction totals match the uninstrumented sweep "
                  "bit-exactly")
    if emit:
        path = telemetry.write_chrome_trace(emit)
        print(f"\nchrome trace written to {path} "
              f"(open in chrome://tracing or Perfetto)")
    if record_path:
        extra = {
            "command": "profile",
            "size": size,
            "shards": shards,
            "plan_key": compiled.key,
            "schedule": compiled.schedule,
            "backend": compiled.plan.backend,
        }
        if profile is not None:
            extra["per_instr"] = profile.as_dict()
        rec = telemetry.run_record(
            k.name,
            registry=telemetry.REGISTRY,
            cache_stats=DEFAULT_PLAN_CACHE.stats(),
            counters=events,
            extra=extra,
        )
        path = telemetry.write_run_record(record_path, rec)
        print(f"run record written to {path}")
    return 1 if mismatch else 0


def _cmd_stats(prometheus: bool, as_json: bool) -> int:
    import json

    from repro import telemetry
    from repro.runtime import DEFAULT_PLAN_CACHE

    if prometheus:
        print(telemetry.to_prometheus(telemetry.REGISTRY), end="")
        return 0
    stats = DEFAULT_PLAN_CACHE.stats()
    if as_json:
        print(json.dumps(
            {
                "metrics": telemetry.REGISTRY.snapshot(),
                "plan_cache": {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "size": stats.size,
                    "maxsize": stats.maxsize,
                    "hit_rate": stats.hit_rate,
                    "keys": DEFAULT_PLAN_CACHE.keys(),
                    "entries": DEFAULT_PLAN_CACHE.entries(),
                },
            },
            indent=1,
            sort_keys=True,
        ))
        return 0
    print("metrics registry:")
    print(telemetry.REGISTRY.render())
    print()
    print(f"plan cache: {stats.summary()}")
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.telemetry.perf import (
        DEFAULT_BASELINE,
        DEFAULT_THRESHOLD,
        RunRecordStore,
        compare_records,
        load_record,
        measure_reference,
    )
    from repro.telemetry.perf.history import REFERENCE_WORKLOAD

    baseline_path = pathlib.Path(args.baseline or DEFAULT_BASELINE)
    baseline = load_record(baseline_path) if baseline_path.exists() else None
    base_extra = (baseline or {}).get("extra") or {}
    kernel = args.kernel or base_extra.get(
        "kernel", REFERENCE_WORKLOAD["kernel"]
    )
    size = args.size or base_extra.get("size", REFERENCE_WORKLOAD["size"])
    seed = (
        args.seed
        if args.seed is not None
        else base_extra.get("seed", REFERENCE_WORKLOAD["seed"])
    )

    if args.update_baseline:
        record = measure_reference(
            kernel, size=size, seed=seed, backend=args.backend
        )
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(record, indent=1, sort_keys=True))
        print(f"baseline written to {baseline_path} "
              f"({kernel}, {size}x{size}, seed {seed}, backend "
              f"{record['extra']['backend']})")
        return 0
    if baseline is None:
        print(f"perf check: baseline {baseline_path} not found "
              f"(create it with --update-baseline)", file=sys.stderr)
        return 2

    current = measure_reference(
        kernel, size=size, seed=seed, backend=args.backend
    )
    if args.record:
        path = RunRecordStore(args.record).append(current)
        print(f"record appended to {path}")
    comparison = compare_records(
        baseline,
        current,
        threshold=(
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        ),
        time_threshold=args.time_threshold,
    )
    # optional speedup gate: counters must already be bit-stable across
    # backends, so a vectorized run may additionally pin its wall-clock
    # win over an interpreter baseline
    base_time = base_extra.get("timing_s")
    cur_time = current["extra"]["timing_s"]
    speedup = (
        base_time / cur_time
        if isinstance(base_time, (int, float)) and cur_time
        else None
    )
    speedup_ok = True
    if args.min_speedup is not None:
        speedup_ok = speedup is not None and speedup >= args.min_speedup
    ok = comparison.ok and speedup_ok
    if args.json:
        print(json.dumps(
            {
                "baseline": str(baseline_path),
                "workload": {
                    "kernel": kernel,
                    "size": size,
                    "seed": seed,
                    "backend": current["extra"]["backend"],
                },
                "ok": ok,
                "threshold": comparison.threshold,
                "speedup": speedup,
                "min_speedup": args.min_speedup,
                "deltas": [
                    {
                        "name": d.name,
                        "baseline": d.baseline,
                        "current": d.current,
                        "rel_change": d.rel_change,
                        "regressed": d.regressed,
                    }
                    for d in comparison.deltas
                ],
            },
            indent=1,
            sort_keys=True,
        ))
    else:
        print(f"workload: {kernel}, {size}x{size}, seed {seed}, "
              f"backend {current['extra']['backend']}")
        print(comparison.render())
        if speedup is not None:
            gate = ""
            if args.min_speedup is not None:
                gate = (f"  [gate >= {args.min_speedup:g}x: "
                        f"{'ok' if speedup_ok else 'FAIL'}]")
            print(f"speedup vs baseline: {speedup:.1f}x "
                  f"({base_time:.3f}s -> {cur_time:.3f}s){gate}")
        elif args.min_speedup is not None:
            print("speedup gate FAILED: baseline carries no timing_s",
                  file=sys.stderr)
    return 0 if ok else 1


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry.perf import (
        DEFAULT_THRESHOLD,
        compare_records,
        load_record,
    )

    comparison = compare_records(
        load_record(args.baseline),
        load_record(args.current),
        threshold=(
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        ),
        time_threshold=args.time_threshold,
    )
    if args.json:
        print(json.dumps(
            {
                "ok": comparison.ok,
                "threshold": comparison.threshold,
                "deltas": [
                    {
                        "name": d.name,
                        "baseline": d.baseline,
                        "current": d.current,
                        "rel_change": d.rel_change,
                        "regressed": d.regressed,
                    }
                    for d in comparison.deltas
                ],
            },
            indent=1,
            sort_keys=True,
        ))
    else:
        print(comparison.render())
    return 0 if comparison.ok else 1


def _cmd_perf_fidelity(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.runtime import compile as compile_stencil
    from repro.stencil.kernels import get_kernel
    from repro.telemetry.perf import fidelity_report
    from repro.telemetry.validate import validate_fidelity_report

    k = get_kernel(args.kernel)
    compiled = compile_stencil(k.weights)
    report = fidelity_report(
        compiled.plan, size=args.size, seed=args.seed, name=f"fidelity-{k.name}"
    )
    validate_fidelity_report(report)
    if args.output:
        path = pathlib.Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=1, sort_keys=True))
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
        return 0
    plan, work = report["plan"], report["workload"]
    print(f"{k.name}: model fidelity on "
          f"{'x'.join(map(str, work['shape']))} "
          f"({work['tiles']} tiles, plan {plan['key'][:16]}…, "
          f"{plan['method']} rank {plan['rank']})")
    print(f"  {'counter':<22} {'equation':<36} {'predicted':>12} "
          f"{'measured':>12} {'rel.err':>8}")
    for c in report["components"]:
        rel = c["rel_error"]
        rel_s = "n/a" if rel is None else f"{rel:+.1%}"
        print(f"  {c['name']:<22} {c['equation']:<36} "
              f"{c['predicted']:>12,} {c['measured']:>12,} {rel_s:>8}")
    model = report["model"]
    print(f"  closed-form context (radius {plan['radius']}): "
          f"memory ratio Eq.14 = {model['memory_ratio_eq14']:.3f}, "
          f"MMA ratio Eq.13/16 = {model['mma_ratio_eq13_16']:.3f}, "
          f"redundancy eliminated = {model['redundancy_eliminated']:.3f}")
    print(f"  max relative error: {report['max_rel_error']:.2%}")
    if args.output:
        print(f"  report written to {args.output}")
    return 0


def _cmd_perf_history(args: argparse.Namespace) -> int:
    from repro.telemetry.perf import RunRecordStore

    store = RunRecordStore(args.root)
    if args.name is None:
        names = store.names()
        if not names:
            print(f"no history under {store.root}")
            return 0
        for name in names:
            print(f"  {name:<32} {len(store.load(name))} record(s)")
        return 0
    records = store.load(args.name)
    if not records:
        print(f"no history for {args.name!r} under {store.root}",
              file=sys.stderr)
        return 2
    for rec in records:
        events = rec.get("events") or {}
        extra = rec.get("extra") or {}
        timing = extra.get("timing_s")
        timing_s = f"  {timing:.3f}s" if isinstance(timing, (int, float)) else ""
        print(f"  {rec['timestamp']}  mma={events.get('mma_ops', 0):,} "
              f"sh.ld={events.get('shared_load_requests', 0):,} "
              f"dram={events.get('global_load_bytes', 0) + events.get('global_store_bytes', 0):,}B"
              f"{timing_s}")
    return 0


def _cmd_perf_trend(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry.perf import (
        DEFAULT_MAD_SCALE,
        DEFAULT_REL_FLOOR,
        DEFAULT_WINDOW,
        RunRecordStore,
        measure_trend_point,
        trend_gate,
    )
    from repro.telemetry.perf.history import REFERENCE_WORKLOAD

    store = RunRecordStore(args.root)
    name = args.name
    if name is None:
        kernel = args.kernel or REFERENCE_WORKLOAD["kernel"]
        name = f"perf-check-{kernel}"
    if args.measure:
        record = measure_trend_point(
            store,
            repeats=args.repeats,
            kernel=args.kernel,
            size=args.size,
            seed=args.seed,
            backend=args.backend,
        )
        if not args.json:
            print(f"measured {record['name']} "
                  f"({record['extra']['timing_s']:.3f}s median of "
                  f"{args.repeats} repeat(s)) -> {store.path_for(name)}")
    try:
        stats = trend_gate(
            store,
            name,
            metric=args.metric,
            window=args.window if args.window is not None else DEFAULT_WINDOW,
            mad_scale=(
                args.mad_scale
                if args.mad_scale is not None
                else DEFAULT_MAD_SCALE
            ),
            rel_floor=(
                args.rel_floor
                if args.rel_floor is not None
                else DEFAULT_REL_FLOOR
            ),
            direction=args.direction,
        )
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf trend: cannot read history for {name!r} under "
              f"{store.root}: {exc}", file=sys.stderr)
        return 2
    if stats.n_history == 0 and stats.latest is None:
        print(f"perf trend: no history for {name!r} under {store.root} — "
              f"append records first (repro perf trend --measure, "
              f"benchmarks, or repro cluster ... --record-history)",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(stats.as_dict(), indent=1, sort_keys=True))
    else:
        print(stats.render())
    if stats.insufficient:
        return 2
    return 0 if stats.ok else 1


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Tail the :data:`~repro.telemetry.health.ENV_HEALTH_FILE` snapshot.

    Exit codes: 0 — every sweep in the snapshot finished; 1 — the
    timeout expired with sweeps still in flight; 2 — no snapshot path
    (argument or ``$REPRO_HEALTH_FILE``) or the file never appeared.
    """
    import json
    import os
    import pathlib
    import time as time_mod

    from repro.telemetry.health import ENV_HEALTH_FILE, render_snapshot

    raw = args.path or os.environ.get(ENV_HEALTH_FILE, "").strip()
    if not raw:
        print(f"monitor: no snapshot path given and ${ENV_HEALTH_FILE} "
              "is unset", file=sys.stderr)
        return 2
    path = pathlib.Path(raw)
    deadline = time_mod.monotonic() + args.timeout
    snapshot = None
    while True:
        if path.exists():
            try:
                snapshot = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                pass  # mid-replace read; keep the last good snapshot
        if snapshot is not None:
            sweeps = snapshot.get("sweeps", [])
            finished = bool(sweeps) and all(s.get("done") for s in sweeps)
            if args.json:
                print(json.dumps(snapshot, sort_keys=True))
            else:
                print(render_snapshot(snapshot))
            if args.once:
                return 0
            if finished:
                print("monitor: all sweeps finished")
                return 0
        elif args.once:
            print(f"monitor: snapshot {path} not found", file=sys.stderr)
            return 2
        if time_mod.monotonic() >= deadline:
            if snapshot is None:
                print(f"monitor: snapshot {path} never appeared "
                      f"within {args.timeout:.0f}s", file=sys.stderr)
                return 2
            print(f"monitor: timed out after {args.timeout:.0f}s with "
                  "sweeps still in flight", file=sys.stderr)
            return 1
        time_mod.sleep(args.interval)


def _cmd_fig8(kernels: list[str] | None, include_best: bool = False) -> int:
    from repro.experiments import PAPER, format_table, run_fig8

    res = run_fig8(kernels=kernels, include_best=include_best)
    print(format_table(res.table_rows(), "Fig. 8 — modelled GStencil/s"))
    if kernels is None:
        print("\nmean LoRAStencil speedups (paper in parentheses):")
        for method, paper in PAPER["fig8_mean_speedup"].items():
            print(f"  vs {method:12s} "
                  f"{res.mean_lora_speedup_over(method):6.2f}x ({paper}x)")
    return 0


def _cmd_fig9() -> int:
    from repro.experiments import PAPER, format_table, run_fig9

    res = run_fig9()
    cfgs = res.configs()
    rows = [["size"] + cfgs]
    for size in res.sizes():
        rows.append([str(size)] + [f"{res.perf(c, size):.2f}" for c in cfgs])
    print(format_table(rows, "Fig. 9 — Box-2D9P breakdown (GStencil/s)"))
    big = max(res.sizes())
    print(f"\nTCU {res.gain(cfgs[1], cfgs[0], big):.2f}x "
          f"(paper {PAPER['fig9_tcu_gain']}x) | "
          f"BVS {res.gain(cfgs[2], cfgs[1], big):.2f}x "
          f"(paper {PAPER['fig9_bvs_gain']}x) | "
          f"AC {res.gain(cfgs[3], cfgs[2], big):.3f}x "
          f"(paper {PAPER['fig9_async_copy_gain']}x)")
    return 0


def _cmd_fig10() -> int:
    from repro.experiments import PAPER, format_table, run_fig10

    res = run_fig10()
    rows = [["kernel", "method", "loads/Mpt", "stores/Mpt", "total/Mpt"]]
    for r in res.rows:
        rows.append([r.kernel, r.method, f"{r.loads:.0f}", f"{r.stores:.0f}",
                     f"{r.total:.0f}"])
    print(format_table(rows, "Fig. 10 — shared-memory requests"))
    print(f"\nmean LoRA/Conv: loads {res.mean_ratio('loads'):.3f} "
          f"(paper {PAPER['fig10_load_ratio']}), "
          f"stores {res.mean_ratio('stores'):.3f} "
          f"(paper {PAPER['fig10_store_ratio']})")
    return 0


def _cmd_table3() -> int:
    from repro.experiments import PAPER, format_table, run_table3

    res = run_table3()
    rows = [["kernel", "method", "CT%", "AI"]]
    for r in res.rows:
        p = PAPER["table3"][r.kernel][r.method]
        rows.append([r.kernel, r.method,
                     f"{r.ct_pct:.2f} ({p['ct_pct']})",
                     f"{r.ai:.2f} ({p['ai']})"])
    print(format_table(rows, "Table III — CT% and AI (paper in parentheses)"))
    return 0


def _cmd_precision(kernel_name: str, steps: list[int]) -> int:
    from repro.experiments.report import format_table
    from repro.precision import precision_sweep
    from repro.stencil.kernels import get_kernel

    k = get_kernel(kernel_name)
    if k.weights.ndim != 2:
        print(f"precision sweep supports 2D kernels, {k.name} is "
              f"{k.weights.ndim}D", file=sys.stderr)
        return 2
    pts = precision_sweep(k.weights, steps=tuple(steps))
    rows = [["steps", "max |err|", "rel L2 err"]]
    for p in pts:
        rows.append([str(p.step), f"{p.max_abs_err:.3e}", f"{p.rel_l2_err:.3e}"])
    print(format_table(rows, f"{k.name}: FP16 TCStencil pipeline vs FP64"))
    return 0


def _cmd_scaling(kernel_name: str, size: int, devices: list[int]) -> int:
    from repro.experiments.report import format_table
    from repro.parallel import SimulatedCluster
    from repro.stencil.kernels import get_kernel

    k = get_kernel(kernel_name)
    if k.weights.ndim != 2:
        print("scaling model supports 2D kernels", file=sys.stderr)
        return 2
    base = None
    rows = [["devices", "mesh", "step time", "comm %", "speedup", "efficiency"]]
    for n in devices:
        mesh = _best_mesh(n)
        t = SimulatedCluster(k.weights, (size, size), mesh).timings(steps=1)
        if base is None:
            base = t
        speedup = t.speedup_over(base)
        rows.append(
            [
                str(n),
                f"{mesh[0]}x{mesh[1]}",
                f"{t.step_s * 1e3:.3f} ms",
                f"{t.comm_fraction * 100:.1f}%",
                f"{speedup:.2f}x",
                f"{speedup / n * 100:.0f}%",
            ]
        )
    print(format_table(rows, f"strong scaling, {k.name} on {size}x{size}"))
    return 0


def _cmd_autotune(kernel_name: str) -> int:
    from repro.core.autotune import autotune_2d
    from repro.experiments.report import format_table
    from repro.stencil.kernels import get_kernel

    k = get_kernel(kernel_name)
    if k.weights.ndim != 2:
        print("autotune supports 2D kernels", file=sys.stderr)
        return 2
    res = autotune_2d(k.weights)
    rows = [["fusion", "tile", "GStencil/s", "MMA/pt", "loads/pt"]]
    for c in res.candidates:
        rows.append(
            [
                str(c.fusion),
                f"{c.tile_shape[0]}x{c.tile_shape[1]}",
                f"{c.gstencil_per_s:.2f}",
                f"{c.mma_per_point:.4f}",
                f"{c.loads_per_point:.4f}",
            ]
        )
    print(format_table(rows, f"autotune — {k.name} (best first)"))
    print(f"\nbest: fusion={res.best.fusion}, tile="
          f"{res.best.tile_shape[0]}x{res.best.tile_shape[1]}")
    return 0


def _cmd_convergence(resolutions: list[int]) -> int:
    from repro.experiments.report import format_table
    from repro.validation import convergence_study, estimated_order

    pts = convergence_study(resolutions=tuple(resolutions))
    rows = [["n", "dx", "steps", "max err", "L2 err"]]
    for p in pts:
        rows.append(
            [str(p.n), f"{p.dx:.4f}", str(p.steps), f"{p.max_err:.3e}",
             f"{p.l2_err:.3e}"]
        )
    print(format_table(rows, "heat-equation convergence (LoRAStencil stack)"))
    print(f"\nobserved order: {estimated_order(pts):.3f} (theory: 2.0)")
    return 0


def _cmd_codegen(kernel_name: str, output: str | None, no_bvs: bool) -> int:
    from repro.codegen import (
        generate_cuda_kernel,
        generate_cuda_kernel_1d,
        generate_cuda_kernel_3d,
    )
    from repro.core.config import OptimizationConfig
    from repro.stencil.kernels import get_kernel

    k = get_kernel(kernel_name)
    config = OptimizationConfig(use_bvs=not no_bvs)
    if k.weights.ndim == 1:
        text = generate_cuda_kernel_1d(k.weights).source
    elif k.weights.ndim == 2:
        text = generate_cuda_kernel(k.weights, config=config).source
    else:
        text = generate_cuda_kernel_3d(k.weights, config=config).full_source
    if output:
        import pathlib

        pathlib.Path(output).write_text(text)
        print(f"wrote {len(text.splitlines())} lines to {output}")
    else:
        try:
            print(text)
        except BrokenPipeError:  # e.g. piped into head
            pass
    return 0


def _cmd_plan(
    kernel_name: str,
    no_tensor_cores: bool,
    as_json: bool = False,
    schedule: str | None = None,
    show_ir: bool = False,
    backend: str | None = None,
) -> int:
    """Compile (or fetch) a kernel's plan and report plan-cache stats."""
    import json

    from repro.core.config import OptimizationConfig
    from repro.runtime import DEFAULT_PLAN_CACHE
    from repro.runtime import compile as compile_stencil
    from repro.stencil.kernels import get_kernel

    k = get_kernel(kernel_name)
    config = (
        OptimizationConfig(
            use_tensor_cores=not no_tensor_cores,
            schedule=schedule or "eager",
        )
        if (no_tensor_cores or schedule)
        else None
    )
    compiled = compile_stencil(k.weights, config=config, backend=backend)
    if as_json:
        from repro import telemetry

        plan = compiled.plan
        record = telemetry.run_record(
            k.name,
            cache_stats=DEFAULT_PLAN_CACHE.stats(),
            extra={
                "command": "plan",
                "plan": {
                    "key": plan.key,
                    "ndim": plan.ndim,
                    "radius": plan.radius,
                    "method": plan.method,
                    "rank": plan.rank,
                    "config": plan.config.label(),
                    "block": list(plan.block),
                    "mma_per_tile": plan.mma_per_tile,
                    "schedule": plan.schedule,
                    "backend": plan.backend,
                    "n_instrs": plan.lowered.n_instrs,
                    "load_use_distance": plan.lowered.load_use_distance,
                    "predicted_gstencil_per_s": plan.predicted_gstencil_per_s,
                },
            },
        )
        telemetry.validate_run_record(record)
        print(json.dumps(record, indent=1, sort_keys=True))
        return 0
    print(f"{k.name}:")
    print(compiled.describe())
    if show_ir:
        print()
        print(compiled.lowered.render_ir())
    again = compile_stencil(k.weights, config=config, backend=backend)
    shared = "hit (same plan object)" if again.plan is compiled.plan else "MISS"
    print()
    print(f"cache      {DEFAULT_PLAN_CACHE.stats().summary()}")
    print(f"recompile  {shared}")
    return 0


def _cmd_trace(kernel_name: str, limit: int) -> int:
    from repro.runtime import compile as compile_stencil
    from repro.stencil.kernels import get_kernel
    from repro.tcu import Device, trace

    k = get_kernel(kernel_name)
    if k.weights.ndim != 2:
        print("trace supports 2D kernels", file=sys.stderr)
        return 2
    device = Device()
    recorder = trace.install(device.counters)
    eng = compile_stencil(k.weights).engine
    h = k.weights.radius
    x = np.zeros((8 + 2 * h, 8 + 2 * h))
    eng.apply_simulated(x, device=device)
    trace.uninstall(device.counters)
    print(f"{k.name}: one 8x8 output tile, {len(recorder.events)} warp ops")
    print(recorder.render(limit=limit))
    return 0


def _cmd_verify() -> int:
    """Run a fast correctness pass of every engine on every zoo kernel."""
    from repro.baselines.registry import all_methods
    from repro.runtime import compile as compile_stencil
    from repro.stencil.kernels import KERNELS
    from repro.stencil.reference import reference_apply

    rng = np.random.default_rng(0)
    failures = 0
    for kernel in KERNELS.values():
        h = kernel.weights.radius
        shape = {
            1: (96 + 2 * h,),
            2: (16 + 2 * h, 20 + 2 * h),
            3: (4 + 2 * h, 10 + 2 * h, 12 + 2 * h),
        }[kernel.weights.ndim]
        x = rng.normal(size=shape)
        ref = reference_apply(x, kernel.weights)
        for method in all_methods(kernel):
            err = float(np.abs(method.apply(x) - ref).max())
            ok = err < 1e-9
            failures += not ok
            print(f"  {kernel.name:<12} {method.name:<12} "
                  f"max|err|={err:.2e}  {'ok' if ok else 'FAIL'}")
        # the runtime facade: compiled plan, batched over 3 grids at once
        compiled = compile_stencil(kernel.weights)
        batch = np.stack([x, x * 0.5, x + 1.0])
        berr = float(np.abs(compiled.apply_batch(batch)[0] - ref).max())
        ok = berr < 1e-9
        failures += not ok
        print(f"  {kernel.name:<12} {'compile+batch':<12} "
              f"max|err|={berr:.2e}  {'ok' if ok else 'FAIL'}")
    print(f"\n{'all engines exact' if not failures else f'{failures} FAILURES'}")
    return 1 if failures else 0


def _best_mesh(n: int) -> tuple[int, int]:
    """Most-square factorization of ``n``."""
    best = (1, n)
    for p in range(1, int(n**0.5) + 1):
        if n % p == 0:
            best = (p, n // p)
    return best


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    """Seeded fault campaign: clean sweep, injected sweep, compare.

    Exit codes: 0 — every injected corruption detected/recovered and
    the output is bit-identical to the fault-free sweep (or, under
    ``--no-verify``, the negative control behaved as expected); 1 —
    recovery claimed success but the output differs (never expected);
    3 — recovery exhausted (:class:`~repro.errors.FaultError`), which
    is the *correct* outcome for ``--sticky`` campaigns.
    """
    import json

    from repro.errors import FaultError
    from repro.faults import FaultPlan
    from repro.runtime import compile as compile_stencil
    from repro.stencil.kernels import get_kernel

    k = get_kernel(args.kernel)
    compiled = compile_stencil(k.weights)
    rng = np.random.default_rng(args.seed)
    shape = _sweep_shape(k.weights.ndim, args.size)
    x = np.pad(rng.normal(size=shape), k.weights.radius)

    clean, _ = compiled.apply_simulated(x, shards=args.shards)

    plan = FaultPlan.random(
        seed=args.seed,
        kinds=args.kinds,
        count=args.faults,
        max_mma_site=max(4, compiled.plan.mma_per_tile) * 4,
        shards=args.shards,
        sticky=args.sticky,
    )
    verify = None if args.no_verify else "abft"
    failed = None
    out = None
    # under --record/--events the injected sweep runs traced, so the
    # record carries ONE merged trace (shard spans re-parented under the
    # facade root) next to the structured event log and health snapshot
    observe = bool(args.record or args.events)
    if observe:
        from repro import telemetry

        observed = telemetry.capture()
    else:
        import contextlib

        observed = contextlib.nullcontext()
    try:
        with observed:
            out, events = compiled.apply_simulated(
                x, shards=args.shards, verify=verify, faults=plan
            )
    except FaultError as exc:
        failed = exc
    report = compiled.last_fault_report
    identical = out is not None and np.array_equal(out, clean)

    if args.no_verify:
        # negative control: effective corruption must reach the output
        expected = report.total_injected == 0 or not identical
        rc = 0 if expected else 1
    elif failed is not None:
        rc = 3
    else:
        rc = 0 if identical and report.as_dict()["unrecovered"] == 0 else 1

    if args.json:
        doc = {
            "kernel": k.name,
            "shape": list(shape),
            "seed": args.seed,
            "shards": args.shards,
            "verify": verify,
            "plan": [str(s) for s in plan.specs],
            "faults": report.as_dict(),
            "output_bit_identical": bool(identical),
            "fault_error": str(failed) if failed else None,
            "exit_code": rc,
        }
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(f"{k.name}: chaos campaign over {shape} "
              f"(seed {args.seed}, verify={verify or 'off'}, "
              f"shards={args.shards})")
        print(plan.describe())
        print()
        print(report.describe())
        print()
        if k.weights.ndim == 2:
            foot = _lowering_checksum_footprint(compiled)
            print(f"hardware ABFT footprint: {foot['checksum_rows']} checksum "
                  f"rows over {foot['baseline_rows']} accumulator rows "
                  f"({foot['overhead_fraction']:.1%} of MMA work)")
        if failed is not None:
            print(f"recovery exhausted: {failed}")
        elif args.no_verify:
            print("negative control: output "
                  + ("DIFFERS from the fault-free sweep (corruption "
                     "reached the output, as expected without ABFT)"
                     if not identical else
                     "matches the fault-free sweep "
                     + ("(no fault fired)" if report.total_injected == 0
                        else "(UNEXPECTED: injections fired but had no "
                             "effect)")))
        else:
            print("recovered output is "
                  + ("bit-identical to the fault-free sweep"
                     if identical else "NOT bit-identical — recovery BUG"))

    if args.events:
        from repro import telemetry

        path = telemetry.write_event_log(args.events)
        if not args.json:
            print(f"event log written to {path} "
                  f"({len(telemetry.EVENT_LOG)} event(s))")
    if args.record:
        from repro import telemetry

        rec = telemetry.run_record(
            k.name,
            counters=None if out is None else events,
            faults=report,
            extra={
                "command": "chaos run",
                "size": args.size,
                "seed": args.seed,
                "shards": args.shards,
                "verify": verify or "off",
                "plan_key": compiled.key,
                "fault_plan": [str(s) for s in plan.specs],
                "output_bit_identical": bool(identical),
                "exit_code": rc,
            },
        )
        telemetry.validate_run_record(rec)
        path = telemetry.write_run_record(args.record, rec)
        if not args.json:
            print(f"run record written to {path}")
    return rc


def _lowering_checksum_footprint(compiled) -> dict:
    from repro.core.lowering import checksum_footprint

    return checksum_footprint(compiled.lowered)


def _cmd_chaos_report(paths: list[str], as_json: bool) -> int:
    """Print the ``faults`` sections of run-record files."""
    import json
    import pathlib

    from repro import telemetry

    rc = 0
    docs = []
    for path in paths:
        try:
            record = json.loads(pathlib.Path(path).read_text())
            telemetry.validate_run_record(record)
        except (OSError, json.JSONDecodeError, telemetry.TelemetryError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            rc = 1
            continue
        faults = record.get("faults")
        docs.append({"path": path, "name": record.get("name"),
                     "faults": faults})
        if as_json:
            continue
        print(f"{path}: {record.get('name')}")
        if faults is None:
            print("  (no faults section — v1 record or fault-free run)")
            continue
        for key in ("injected", "detected", "recovered", "retries", "shard"):
            section = faults.get(key)
            if isinstance(section, dict):
                body = "  ".join(f"{k}={v}" for k, v in section.items())
                print(f"  {key:<12} {body}")
        print(f"  {'total':<12} injected={faults.get('injected_total', 0)}  "
              f"unrecovered={faults.get('unrecovered', 0)}")
    if as_json:
        print(json.dumps(docs, indent=1, sort_keys=True))
    return rc


def _cluster_prepare(args: argparse.Namespace):
    """Shared setup of ``cluster run`` / ``cluster report``.

    Returns ``(prep, rc)``: ``prep`` is a dict of everything the
    commands need (kernel, plan, runtime, input, fault plan, and the
    clean-run field for ``--crash-rank`` recovery checks), or ``None``
    with a non-zero ``rc`` on argument errors.
    """
    from repro.faults import FaultPlan, FaultSpec
    from repro.parallel.cluster import ClusterRuntime
    from repro.parallel.plan import distribute
    from repro.stencil.kernels import get_kernel

    k = get_kernel(args.kernel)
    ndim = k.weights.ndim
    shape = _sweep_shape(ndim, args.size)
    if args.mesh is not None:
        mesh = tuple(args.mesh)
        if len(mesh) != ndim:
            print(f"error: {k.name} is {ndim}D; --mesh needs {ndim} "
                  f"integer(s), got {len(mesh)}", file=sys.stderr)
            return None, 2
    else:
        mesh = {1: (2,), 2: (2, 2), 3: (1, 2, 2)}[ndim]

    plan = distribute(
        k.weights,
        shape,
        mesh,
        boundary=args.boundary,
        block_steps=args.block_steps,
        tiling=args.tiling,
        backend=args.backend,
    )
    runtime = ClusterRuntime(plan)
    rng = np.random.default_rng(args.seed)
    x = rng.normal(size=shape)

    run_kwargs = dict(
        overlap=args.overlap,
        executor=args.executor,
        simulate=args.simulate,
    )
    if getattr(args, "elastic", False):
        run_kwargs["elastic"] = True
    specs = []
    if args.crash_rank is not None:
        specs.append(FaultSpec(kind="shard_crash", site=args.crash_rank))
    halo_round = getattr(args, "halo_corrupt_round", None)
    if halo_round is not None:
        specs.append(FaultSpec(kind="halo_corrupt", site=halo_round))
    kill_rank = getattr(args, "kill_rank", None)
    if kill_rank is not None:
        specs.append(FaultSpec(kind="rank_crash", site=kill_rank, sticky=True))
    faults = None
    clean = None
    if specs:
        faults = FaultPlan(specs=tuple(specs))
        clean_kwargs = dict(run_kwargs)
        clean_kwargs.pop("elastic", None)
        clean = runtime.run(x, args.steps, **clean_kwargs).field
    return {
        "kernel": k,
        "shape": shape,
        "mesh": mesh,
        "plan": plan,
        "runtime": runtime,
        "x": x,
        "run_kwargs": run_kwargs,
        "faults": faults,
        "clean": clean,
    }, 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Distributed sweep through the DistributedPlan pipeline.

    Exit codes: 0 — the run matched the dense reference (and, with
    ``--crash-rank``, recovered to the fault-free bits with nothing
    unrecovered); 1 — mismatch or unrecovered fault.
    """
    import contextlib
    import json

    from repro import telemetry
    from repro.parallel.checkpoint import CheckpointConfig, CheckpointHalt
    from repro.stencil.reference import reference_iterate

    prep, rc = _cluster_prepare(args)
    if prep is None:
        return rc
    k, shape, mesh, plan = (
        prep["kernel"], prep["shape"], prep["mesh"], prep["plan"]
    )
    runtime, x, run_kwargs = prep["runtime"], prep["x"], prep["run_kwargs"]
    faults, clean = prep["faults"], prep["clean"]

    ckpt_cfg = None
    if args.checkpoint_dir:
        ckpt_cfg = CheckpointConfig(
            dir=args.checkpoint_dir,
            every=args.checkpoint_every,
            halt_after=args.halt_after_round,
        )
        # everything `cluster resume` needs to rebuild the plan and the
        # input field from the manifest alone
        runtime.checkpoint_meta = {
            "kernel": k.name,
            "size": args.size,
            "mesh": list(mesh),
            "steps": args.steps,
            "block_steps": args.block_steps,
            "tiling": args.tiling,
            "boundary": args.boundary,
            "backend": args.backend,
            "overlap": args.overlap,
            "executor": args.executor,
            "simulate": args.simulate,
            "seed": args.seed,
            "elastic": bool(run_kwargs.get("elastic", False)),
            "faults": (
                [s.as_dict() for s in faults.specs] if faults else []
            ),
        }

    observe = bool(args.record or args.events or args.record_history)
    observed = telemetry.capture() if observe else contextlib.nullcontext()
    try:
        with observed:
            result = runtime.run(
                x, args.steps, faults=faults, checkpoint=ckpt_cfg,
                **run_kwargs,
            )
    except CheckpointHalt as halt:
        if not args.json:
            print(f"{k.name}: halted after round {halt.round_index}; "
                  f"checkpoint at {halt.path}")
            print(f"resume with: repro cluster resume "
                  f"--checkpoint-dir {args.checkpoint_dir}")
        if args.events:
            path = telemetry.write_event_log(args.events)
            if not args.json:
                print(f"event log written to {path}")
        return 3
    except KeyboardInterrupt:
        if args.events:
            with contextlib.suppress(Exception):
                telemetry.write_event_log(args.events)
        print(f"{k.name}: interrupted", file=sys.stderr)
        return 130

    ref = reference_iterate(
        x, k.weights, args.steps, boundary=args.boundary
    )
    matches_ref = np.allclose(result.field, ref, atol=1e-6)
    recovered = True
    if clean is not None:
        recovered = (
            np.array_equal(result.field, clean)
            and result.fault_report is not None
            and result.fault_report.counts["unrecovered"] == 0
        )
    rc = 0 if (matches_ref and recovered) else 1

    report = result.fault_report
    doc = {
        "kernel": k.name,
        "plan_key": plan.key,
        "rank_plan_key": plan.compiled.key,
        "shape": list(shape),
        "mesh": list(mesh),
        "backend": result.backend or plan.backend,
        "executor": result.executor,
        "overlap": result.overlap,
        "tiling": plan.schedule.tiling,
        "steps": result.steps,
        "block_steps": plan.schedule.block_steps,
        "rounds": result.rounds,
        "phases": list(result.phases),
        "halo_bytes_exchanged": result.exchanged_bytes,
        "worker_pids": list(result.worker_pids),
        "matches_reference": bool(matches_ref),
        "recovered_bit_identical": bool(recovered),
        "exit_code": rc,
    }
    if result.counters is not None:
        doc["counters"] = result.counters.as_dict()
    if report is not None:
        doc["faults"] = report.as_dict()
    resilience = getattr(result, "resilience", None)
    if resilience is not None:
        doc["resilience"] = resilience

    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(f"{k.name}: distributed sweep over {shape} on mesh {mesh} "
              f"({plan.num_devices} device(s))")
        print(f"  {plan.schedule.describe()}")
        print(f"  executor={result.executor} overlap={result.overlap} "
              f"backend={doc['backend']}")
        print(f"  {result.steps} step(s) in {result.rounds} round(s) "
              f"{result.phases}")
        print(f"  halo bytes exchanged: {result.exchanged_bytes:,}")
        if result.counters is not None:
            for name, value in result.counters.as_dict().items():
                if value:
                    print(f"  {name:28s} {value:>12,}")
        if report is not None:
            print()
            print(report.describe())
        print()
        print("reference check: "
              + ("PASS" if matches_ref else "FAIL (diverged)"))
        if clean is not None:
            print("recovery check: "
                  + ("bit-identical to fault-free run" if recovered
                     else "FAILED — output differs or faults unrecovered"))

    if args.events:
        path = telemetry.write_event_log(args.events)
        if not args.json:
            print(f"event log written to {path} "
                  f"({len(telemetry.EVENT_LOG)} event(s))")
    if args.record or args.record_history:
        cluster_section = None
        if observe:
            try:
                cluster_section = result.report()
            except telemetry.TelemetryError:
                cluster_section = None
        rec = telemetry.run_record(
            f"cluster-{k.name}",
            counters=result.counters,
            faults=report,
            cluster=cluster_section,
            resilience=resilience,
            extra={"command": "cluster", **doc},
        )
        telemetry.validate_run_record(rec)
        if args.record:
            path = telemetry.write_run_record(args.record, rec)
            if not args.json:
                print(f"run record written to {path}")
        if args.record_history:
            from repro.telemetry.perf import RunRecordStore

            path = RunRecordStore(args.record_history).append(rec)
            if not args.json:
                print(f"run record appended to {path}")
    return rc


def _cmd_cluster_resume(args: argparse.Namespace) -> int:
    """Resume a checkpointed distributed sweep from its latest barrier.

    The plan is rebuilt from the checkpoint manifest (written by
    ``cluster run --checkpoint-dir``), keyed against the snapshot, and
    the remaining rounds are replayed.  Exit codes: 0 — the completed
    trajectory is bit-identical to an uninterrupted fault-free run;
    1 — mismatch; 2 — unusable checkpoint directory/manifest.
    """
    import json

    from repro import telemetry
    from repro.faults import FaultPlan, FaultSpec
    from repro.parallel.checkpoint import CheckpointError, load_checkpoint
    from repro.parallel.cluster import ClusterRuntime
    from repro.parallel.plan import distribute
    from repro.stencil.kernels import get_kernel

    # the capture opens before load_checkpoint so the
    # ``checkpoint.restored`` event lands in the exported log
    with telemetry.capture():
        try:
            ckpt = load_checkpoint(
                args.checkpoint_dir, round_index=args.round
            )
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rc, result, clean, k, plan, doc = _resume_checkpointed(args, ckpt)
    if result is None:
        return rc
    resilience = doc.get("resilience")
    report = result.fault_report

    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        identical = doc["bit_identical"]
        print(f"{k.name}: resumed from round {ckpt.round_index} "
              f"({ckpt.path})")
        print(f"  {result.steps} step(s) in {result.rounds} round(s) "
              f"{result.phases}")
        print(f"  halo bytes exchanged: {result.exchanged_bytes:,} "
              f"({result.resumed_halo_bytes:,} before the checkpoint)")
        if report is not None:
            print()
            print(report.describe())
        print()
        print("bit-identity check: "
              + ("PASS — identical to the uninterrupted run" if identical
                 else "FAIL — trajectory diverged after resume"))

    if args.events:
        path = telemetry.write_event_log(args.events)
        if not args.json:
            print(f"event log written to {path} "
                  f"({len(telemetry.EVENT_LOG)} event(s))")
    if args.record or args.record_history:
        rec = telemetry.run_record(
            f"cluster-resume-{k.name}",
            counters=result.counters,
            faults=report,
            resilience=resilience,
            extra={"command": "cluster resume", **doc},
        )
        telemetry.validate_run_record(rec)
        if args.record:
            path = telemetry.write_run_record(args.record, rec)
            if not args.json:
                print(f"run record written to {path}")
        if args.record_history:
            from repro.telemetry.perf import RunRecordStore

            path = RunRecordStore(args.record_history).append(rec)
            if not args.json:
                print(f"run record appended to {path}")
    return rc


def _resume_checkpointed(args, ckpt):
    """The resume body: rebuild the plan from the manifest, replay.

    Returns ``(rc, result, clean, kernel, plan, doc)``; ``result`` is
    ``None`` when the checkpoint metadata is unusable (``rc`` then
    holds the error exit code).
    """
    from repro import telemetry
    from repro.faults import FaultPlan, FaultSpec
    from repro.parallel.cluster import ClusterRuntime
    from repro.parallel.plan import distribute
    from repro.stencil.kernels import get_kernel

    # plan rebuilding and the bit-identity oracle run stay out of the
    # exported trace: the record must hold exactly one trace — the one
    # the original run stamped into the snapshot
    telemetry.disable()
    meta = ckpt.meta
    required = ("kernel", "size", "mesh", "steps", "seed")
    missing = [key for key in required if key not in meta]
    if missing:
        print(f"error: checkpoint manifest is missing run metadata "
              f"{missing}; was it written by `repro cluster run "
              f"--checkpoint-dir`?", file=sys.stderr)
        return 2, None, None, None, None, {}

    k = get_kernel(meta["kernel"])
    shape = _sweep_shape(k.weights.ndim, int(meta["size"]))
    mesh = tuple(int(m) for m in meta["mesh"])
    steps = int(meta["steps"])
    plan = distribute(
        k.weights,
        shape,
        mesh,
        boundary=meta.get("boundary", "constant"),
        block_steps=int(meta.get("block_steps", 1)),
        tiling=meta.get("tiling", "trapezoid"),
        backend=meta.get("backend"),
    )
    if plan.key != ckpt.plan_key:
        print(f"error: rebuilt plan {plan.key[:12]}… does not match the "
              f"checkpointed plan {ckpt.plan_key[:12]}…", file=sys.stderr)
        return 2, None, None, None, None, {}

    rng = np.random.default_rng(int(meta["seed"]))
    x = rng.normal(size=shape)
    run_kwargs = dict(
        overlap=bool(meta.get("overlap", False)),
        executor=meta.get("executor", "serial"),
        simulate=bool(meta.get("simulate", False)),
    )
    spec_docs = meta.get("faults") or []
    faults = (
        FaultPlan(specs=tuple(FaultSpec.from_dict(d) for d in spec_docs))
        if spec_docs else None
    )

    # the bit-identity oracle: the same sweep, uninterrupted, fault-free
    clean = ClusterRuntime(plan).run(x, steps, **run_kwargs).field
    telemetry.enable()

    runtime = ClusterRuntime(plan)
    result = runtime.run(
        x, steps,
        faults=faults,
        resume_from=ckpt,
        elastic=bool(meta.get("elastic", False)),
        **run_kwargs,
    )

    identical = np.array_equal(result.field, clean)
    rc = 0 if identical else 1
    resilience = getattr(result, "resilience", None)
    report = result.fault_report

    doc = {
        "kernel": k.name,
        "plan_key": plan.key,
        "shape": list(shape),
        "mesh": list(mesh),
        "steps": steps,
        "resumed_from_round": ckpt.round_index,
        "rounds": result.rounds,
        "phases": list(result.phases),
        "halo_bytes_exchanged": result.exchanged_bytes,
        "resumed_halo_bytes": result.resumed_halo_bytes,
        "trace_id": ckpt.trace_id,
        "bit_identical": bool(identical),
        "exit_code": rc,
    }
    if resilience is not None:
        doc["resilience"] = resilience
    if report is not None:
        doc["faults"] = report.as_dict()
    return rc, result, clean, k, plan, doc


def _cmd_cluster_report(args: argparse.Namespace) -> int:
    """One traced distributed sweep, post-processed into the observatory.

    Exit codes: 0 — the run matched the dense reference (and recovered
    bit-identically under ``--crash-rank``); 1 — mismatch or
    unrecovered fault.  The report itself is always printed/written on
    either exit code.
    """
    import json
    import pathlib

    from repro import telemetry
    from repro.stencil.reference import reference_iterate
    from repro.telemetry.cluster import render_gantt, to_lane_trace
    from repro.telemetry.validate import validate_cluster_report

    prep, rc = _cluster_prepare(args)
    if prep is None:
        return rc
    k = prep["kernel"]
    runtime, x = prep["runtime"], prep["x"]
    run_kwargs, faults, clean = (
        prep["run_kwargs"], prep["faults"], prep["clean"]
    )

    with telemetry.capture():
        result = runtime.run(x, args.steps, faults=faults, **run_kwargs)
    report = result.report()
    validate_cluster_report(report)

    ref = reference_iterate(
        x, k.weights, args.steps, boundary=args.boundary
    )
    matches_ref = np.allclose(result.field, ref, atol=1e-6)
    recovered = True
    if clean is not None:
        recovered = (
            np.array_equal(result.field, clean)
            and result.fault_report is not None
            and result.fault_report.counts["unrecovered"] == 0
        )
    rc = 0 if (matches_ref and recovered) else 1

    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(render_gantt(report, width=args.gantt_width))
        print()
        print("reference check: "
              + ("PASS" if matches_ref else "FAIL (diverged)"))
        if clean is not None:
            print("recovery check: "
                  + ("bit-identical to fault-free run" if recovered
                     else "FAILED — output differs or faults unrecovered"))
    if args.output:
        path = pathlib.Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=1, sort_keys=True))
        if not args.json:
            print(f"cluster report written to {path}")
    if args.chrome_trace:
        path = pathlib.Path(args.chrome_trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(to_lane_trace(report), indent=1))
        if not args.json:
            print(f"per-rank lane trace written to {path}")
    if args.record or args.record_history:
        rec = telemetry.run_record(
            f"cluster-report-{k.name}",
            counters=result.counters,
            faults=result.fault_report,
            cluster=report,
            extra={
                "command": "cluster report",
                "kernel": k.name,
                "executor": result.executor,
                "overlap": result.overlap,
                "exit_code": rc,
                # the trend-gated series: imbalance regresses upward,
                # overlap efficiency regresses downward
                "overlap_efficiency": report["overlap"]["efficiency"],
                "imbalance_max_over_mean": (
                    report["imbalance"]["max_over_mean"]
                ),
                "critical_path_s": report["critical_path"]["s"],
                "halo_bytes": report["halo"]["total_bytes"],
            },
        )
        telemetry.validate_run_record(rec)
        if args.record:
            path = telemetry.write_run_record(args.record, rec)
            if not args.json:
                print(f"run record written to {path}")
        if args.record_history:
            from repro.telemetry.perf import RunRecordStore

            path = RunRecordStore(args.record_history).append(rec)
            if not args.json:
                print(f"run record appended to {path}")
    return rc


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "kernels":
        return _cmd_kernels()
    if args.command == "decompose":
        return _cmd_decompose(args.kernel)
    if args.command == "plan":
        return _cmd_plan(args.kernel, args.no_tensor_cores, args.json,
                         args.schedule, args.ir, args.backend)
    if args.command == "run":
        return _cmd_run(args.kernel, args.size, args.seed, args.json,
                        args.backend)
    if args.command == "profile":
        return _cmd_profile(args.kernel, args.size, args.seed, args.shards,
                            args.emit, args.record, args.per_instr,
                            args.backend)
    if args.command == "stats":
        return _cmd_stats(args.prometheus, args.json)
    if args.command == "perf":
        return {
            "check": _cmd_perf_check,
            "diff": _cmd_perf_diff,
            "fidelity": _cmd_perf_fidelity,
            "history": _cmd_perf_history,
            "trend": _cmd_perf_trend,
        }[args.perf_command](args)
    if args.command == "cluster":
        if args.cluster_command == "report":
            return _cmd_cluster_report(args)
        if args.cluster_command == "resume":
            return _cmd_cluster_resume(args)
        return _cmd_cluster(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "fig8":
        return _cmd_fig8(args.kernels, args.best)
    if args.command == "fig9":
        return _cmd_fig9()
    if args.command == "fig10":
        return _cmd_fig10()
    if args.command == "table3":
        return _cmd_table3()
    if args.command == "precision":
        return _cmd_precision(args.kernel, args.steps)
    if args.command == "scaling":
        return _cmd_scaling(args.kernel, args.size, args.devices)
    if args.command == "autotune":
        return _cmd_autotune(args.kernel)
    if args.command == "convergence":
        return _cmd_convergence(args.resolutions)
    if args.command == "codegen":
        return _cmd_codegen(args.kernel, args.output, args.no_bvs)
    if args.command == "chaos":
        if args.chaos_command == "run":
            return _cmd_chaos_run(args)
        return _cmd_chaos_report(args.paths, args.json)
    if args.command == "trace":
        return _cmd_trace(args.kernel, args.limit)
    if args.command == "verify":
        return _cmd_verify()
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` (default ``sys.argv``) and dispatch one command."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # back-compat: `repro cluster <kernel> ...` predates the run/report
    # split; a non-subcommand token right after `cluster` means `run`
    first = next((t for t in argv if not t.startswith("-")), None)
    if first == "cluster":
        i = argv.index("cluster")
        nxt = argv[i + 1] if i + 1 < len(argv) else None
        if nxt is not None and nxt not in (
            "run", "report", "resume", "-h", "--help"
        ):
            argv.insert(i + 1, "run")
    args = build_parser().parse_args(argv)
    from repro.errors import BackendError

    if not getattr(args, "telemetry", False):
        try:
            return _dispatch(args)
        except BackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    # --telemetry: trace the whole command, then append a span-tree and
    # metrics epilogue (skipped under --json so stdout stays parseable —
    # the spans are still collected and exportable via `repro stats`).
    from repro import telemetry

    telemetry.reset()
    telemetry.enable()
    try:
        with telemetry.TRACER.span(f"cli.{args.command}", category="cli"):
            rc = _dispatch(args)
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        telemetry.disable()
    if not getattr(args, "json", False):
        root = telemetry.TRACER.last_root()
        print("\n— telemetry —")
        if root is not None:
            print(root.render_tree())
        print("\nmetrics:")
        print(telemetry.REGISTRY.render())
        print(f"\n({len(telemetry.REGISTRY)} metrics; export with "
              f"`repro stats --prometheus`)")
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
