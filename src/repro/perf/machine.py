"""Machine descriptions.

:data:`A100` encodes the evaluation platform of Section V-A: an NVIDIA
A100-80GB (108 SMs x 4 tensor cores, 19.5 TFLOP/s FP64 on the TCUs,
1935 GB/s HBM2e).  The two starred constants are *calibrated* rather
than data-sheet values — they price effects the event counters cannot
express directly (see DESIGN.md Section 6):

* ``shuffle_stall_s`` — pipeline serialization per warp shuffle during
  MCM accumulator splitting, calibrated so removing all shuffles
  reproduces the paper's measured 4.00x BVS gain (Fig. 9);
* ``register_staging_bw`` — effective throughput of global->register->
  shared staging, calibrated so eliminating it with ``cp.async``
  reproduces the paper's 29.7% async-copy gain (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "A100"]


@dataclass(frozen=True)
class MachineSpec:
    """Peak rates of one GPU."""

    name: str
    #: FP64 tensor-core peak, FLOP/s
    tcu_peak_flops: float
    #: FP64 CUDA-core peak, FLOP/s
    cuda_peak_flops: float
    #: HBM bandwidth, B/s
    dram_bandwidth: float
    #: aggregate shared-memory bandwidth, B/s
    smem_bandwidth: float
    #: aggregate warp-instruction issue rate, instructions/s
    issue_rate: float
    #: number of streaming multiprocessors
    num_sms: int
    #: shared memory capacity per SM, bytes
    smem_capacity: int
    #: calibrated: pipeline stall per warp shuffle, seconds (*)
    shuffle_stall_s: float
    #: calibrated: global->register->shared staging throughput, B/s (*)
    register_staging_bw: float

    @property
    def bytes_per_smem_request(self) -> int:
        """One warp-wide shared-memory request moves 32 x FP64."""
        return 32 * 8


A100 = MachineSpec(
    name="NVIDIA A100-80GB (SXM)",
    tcu_peak_flops=19.5e12,
    cuda_peak_flops=9.7e12,
    dram_bandwidth=1.935e12,
    smem_bandwidth=19.5e12,  # 128 B/clk/SM x 108 SM x 1.41 GHz
    issue_rate=6.09e11,  # 4 schedulers/SM x 108 SM x 1.41 GHz
    num_sms=108,
    smem_capacity=164 * 1024,
    shuffle_stall_s=1.28e-10,
    register_staging_bw=1.43e12,
)
