"""Performance model: simulator event counts -> A100-calibrated time.

The paper measures wall-clock on an A100; we cannot.  Instead
:mod:`repro.perf.costmodel` converts each method's *measured or analytic
event footprint* (per grid point and timestep) into time through a
roofline-style machine model of the A100 (:mod:`repro.perf.machine`),
using the per-method efficiency traits described in DESIGN.md Section 6.
Absolute GStencil/s numbers are therefore model outputs; the claims this
reproduction checks are the *relative* ones (method ordering, speedup
ratios, breakdown factors), which derive from the counted quantities.
"""

from repro.perf.machine import A100, MachineSpec
from repro.perf.costmodel import (
    CostBreakdown,
    cost_breakdown,
    gstencil_per_second,
    time_per_point,
)
from repro.perf.metrics import arithmetic_intensity, compute_throughput_pct, gstencils

__all__ = [
    "MachineSpec",
    "A100",
    "CostBreakdown",
    "cost_breakdown",
    "time_per_point",
    "gstencil_per_second",
    "gstencils",
    "arithmetic_intensity",
    "compute_throughput_pct",
]
