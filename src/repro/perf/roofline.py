"""Roofline analysis.

Places every (method, kernel) pair on the classic roofline: attainable
performance = ``min(peak_compute, AI * memory_bandwidth)``, with the
achieved point coming from the cost model.  This is the analysis frame
behind Table III's CT/AI columns: LoRAStencil's higher arithmetic
intensity moves it right along the roof, out of the bandwidth-bound
region ConvStencil sits in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import FootprintScale, MethodTraits
from repro.perf.costmodel import cost_breakdown
from repro.perf.machine import A100, MachineSpec
from repro.tcu.counters import MMA_FLOPS

__all__ = ["RooflinePoint", "roofline_point", "ridge_intensity"]


@dataclass(frozen=True)
class RooflinePoint:
    """One method's position on the roofline (FLOP/s vs FLOP/byte)."""

    arithmetic_intensity: float
    achieved_flops: float
    attainable_flops: float
    peak_flops: float
    bound: str  # "compute" | "bandwidth"

    @property
    def roof_efficiency(self) -> float:
        """Achieved fraction of the *attainable* (not absolute) roof."""
        if self.attainable_flops <= 0:
            return 0.0
        return self.achieved_flops / self.attainable_flops


def ridge_intensity(machine: MachineSpec = A100, tensor_cores: bool = True) -> float:
    """The AI where the roof transitions from bandwidth- to compute-bound."""
    peak = machine.tcu_peak_flops if tensor_cores else machine.cuda_peak_flops
    return peak / machine.dram_bandwidth


def roofline_point(
    footprint: FootprintScale,
    traits: MethodTraits,
    machine: MachineSpec = A100,
    tensor_cores: bool = True,
) -> RooflinePoint:
    """Evaluate one footprint against the machine's roofline."""
    per_pt = footprint.per_point()
    flops_per_pt = per_pt["mma_ops"] * MMA_FLOPS + per_pt["cuda_core_flops"]
    dram_per_pt = per_pt["global_load_bytes"] + per_pt["global_store_bytes"]
    ai = flops_per_pt / dram_per_pt if dram_per_pt else float("inf")

    peak = machine.tcu_peak_flops if tensor_cores else machine.cuda_peak_flops
    attainable = min(peak, ai * machine.dram_bandwidth)
    t = cost_breakdown(footprint, traits, machine).total
    achieved = flops_per_pt / t if t > 0 else 0.0
    return RooflinePoint(
        arithmetic_intensity=ai,
        achieved_flops=achieved,
        attainable_flops=attainable,
        peak_flops=peak,
        bound="compute" if ai >= ridge_intensity(machine, tensor_cores) else "bandwidth",
    )
