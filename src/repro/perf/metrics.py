"""Evaluation metrics (Section V-A, Table III).

* :func:`gstencils` — Eq. 18: ``T * prod(N_i) / (t * 1e9)``.
* :func:`arithmetic_intensity` — Table III's AI: FLOP per DRAM byte.
* :func:`compute_throughput_pct` — Table III's CT: achieved fraction of
  the binding compute unit's peak, in percent.
"""

from __future__ import annotations

from repro.baselines.base import FootprintScale, MethodTraits
from repro.perf.costmodel import cost_breakdown
from repro.perf.machine import A100, MachineSpec
from repro.tcu.counters import MMA_FLOPS

__all__ = ["gstencils", "arithmetic_intensity", "compute_throughput_pct"]


def gstencils(
    iterations: int,
    grid_shape: tuple[int, ...],
    elapsed_seconds: float,
) -> float:
    """Gigastencils per second (Eq. 18)."""
    if elapsed_seconds <= 0:
        raise ValueError(f"elapsed time must be > 0, got {elapsed_seconds}")
    points = 1
    for n in grid_shape:
        points *= n
    return iterations * points / (elapsed_seconds * 1e9)


def arithmetic_intensity(footprint: FootprintScale) -> float:
    """FLOP per DRAM byte for one sweep (Table III's AI column)."""
    per_pt = footprint.per_point()
    flops = per_pt["mma_ops"] * MMA_FLOPS + per_pt["cuda_core_flops"]
    dram = per_pt["global_load_bytes"] + per_pt["global_store_bytes"]
    if dram == 0:
        return float("inf") if flops else 0.0
    return flops / dram


def compute_throughput_pct(
    footprint: FootprintScale,
    traits: MethodTraits,
    machine: MachineSpec = A100,
    tensor_cores: bool = True,
) -> float:
    """Achieved compute throughput as % of peak (Table III's CT column).

    Achieved rate = (FLOPs per point) / (modelled time per point); peak
    is the tensor-core peak for TCU methods, CUDA-core peak otherwise.
    """
    per_pt = footprint.per_point()
    bd = cost_breakdown(footprint, traits, machine)
    t = bd.total
    if t <= 0:
        return 0.0
    if tensor_cores:
        flops = per_pt["mma_ops"] * MMA_FLOPS
        peak = machine.tcu_peak_flops
    else:
        flops = per_pt["cuda_core_flops"]
        peak = machine.cuda_peak_flops
    return 100.0 * (flops / t) / peak
