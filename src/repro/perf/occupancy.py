"""Shared-memory occupancy model.

LoRAStencil's Section V-D attributes part of its advantage to
occupancy: ConvStencil's stencil2row matrices occupy extra shared
memory per block, capping how many thread blocks an SM can host and
therefore how much latency the SM can hide.  This module quantifies
that: blocks per SM limited by the shared-memory capacity, normalized
to an occupancy factor.
"""

from __future__ import annotations

from repro.perf.machine import A100, MachineSpec

__all__ = ["blocks_per_sm", "occupancy_factor"]

#: target resident blocks per SM for full latency hiding
_FULL_OCCUPANCY_BLOCKS = 8


def blocks_per_sm(
    shared_bytes_per_block: int,
    machine: MachineSpec = A100,
) -> int:
    """How many blocks fit in one SM's shared memory."""
    if shared_bytes_per_block <= 0:
        return _FULL_OCCUPANCY_BLOCKS
    return max(0, machine.smem_capacity // shared_bytes_per_block)


def occupancy_factor(
    shared_bytes_per_block: int,
    machine: MachineSpec = A100,
) -> float:
    """Occupancy in [0, 1]: resident blocks over the full-occupancy
    target, capped at 1."""
    return min(
        1.0, blocks_per_sm(shared_bytes_per_block, machine) / _FULL_OCCUPANCY_BLOCKS
    )
