"""Roofline cost model: per-point event rates -> time and GStencil/s.

Model (per grid point and timestep)::

    t_compute = max( mma*512 / (TCU_peak * eff_tcu) + shuffles * stall,
                     flops   / (CUDA_peak * eff_cuda),
                     inst    / (issue_rate * eff_issue) )
    t_memory  = dram_bytes / (HBM_bw * eff_dram)
              + smem_requests*256 / (smem_bw * eff_smem)
              + reg_bytes / register_staging_bw
    t = overhead * time_scale * max(t_compute, t_memory)

Shuffles serialize with the tensor-core pipeline (they sit between the
two gathers of the MCM), hence they add to the TCU term; memory terms
add to each other because DRAM, shared and register staging contend for
the same LSU path.  ``time_scale`` implements the paper's TCStencil
FP64 convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import FootprintScale, MethodTraits
from repro.perf.machine import A100, MachineSpec
from repro.tcu.counters import MMA_FLOPS

__all__ = [
    "CostBreakdown",
    "cost_breakdown",
    "time_per_point",
    "gstencil_per_second",
]


@dataclass(frozen=True)
class CostBreakdown:
    """All model terms for one (method, kernel) pair, seconds/point."""

    t_tcu: float
    t_shuffle: float
    t_cuda: float
    t_issue: float
    t_dram: float
    t_smem: float
    t_reg: float
    t_fixed: float
    overhead: float
    time_scale: float

    @property
    def t_compute(self) -> float:
        return max(self.t_tcu + self.t_shuffle, self.t_cuda, self.t_issue)

    @property
    def t_memory(self) -> float:
        return self.t_dram + self.t_smem + self.t_reg

    @property
    def total(self) -> float:
        return (
            self.overhead
            * self.time_scale
            * (max(self.t_compute, self.t_memory) + self.t_fixed)
        )

    @property
    def bound(self) -> str:
        """Which resource binds this configuration."""
        terms = {
            "tcu": self.t_tcu + self.t_shuffle,
            "cuda": self.t_cuda,
            "issue": self.t_issue,
            "memory": self.t_memory,
        }
        return max(terms, key=terms.get)


def cost_breakdown(
    footprint: FootprintScale,
    traits: MethodTraits,
    machine: MachineSpec = A100,
) -> CostBreakdown:
    """Evaluate the model for one measured/analytic footprint."""
    per_pt = footprint.per_point()
    mma = per_pt["mma_ops"]
    flops = per_pt["cuda_core_flops"]
    loads = per_pt["shared_load_requests"]
    stores = per_pt["shared_store_requests"]
    shuffles = per_pt["shuffle_ops"]
    dram = per_pt["global_load_bytes"] + per_pt["global_store_bytes"]
    reg = per_pt["register_intermediate_bytes"]

    # warp-level instruction estimate: each MMA, fragment load and store
    # is one instruction; CUDA-core FLOPs issue as warp FMAs (32 lanes,
    # 2 FLOPs each)
    inst = mma + loads + stores + flops / 64.0

    t_tcu = mma * MMA_FLOPS / (machine.tcu_peak_flops * traits.tcu_efficiency)
    t_shuffle = shuffles * machine.shuffle_stall_s
    t_cuda = flops / (machine.cuda_peak_flops * traits.cuda_efficiency)
    t_issue = inst / (machine.issue_rate * traits.issue_efficiency)
    t_dram = dram / (machine.dram_bandwidth * traits.dram_efficiency)
    t_smem = (
        (loads + stores)
        * machine.bytes_per_smem_request
        / (machine.smem_bandwidth * traits.smem_efficiency)
    )
    t_reg = reg / machine.register_staging_bw
    return CostBreakdown(
        t_tcu=t_tcu,
        t_shuffle=t_shuffle,
        t_cuda=t_cuda,
        t_issue=t_issue,
        t_dram=t_dram,
        t_smem=t_smem,
        t_reg=t_reg,
        t_fixed=traits.fixed_time_s,
        overhead=traits.launch_overhead,
        time_scale=traits.time_scale,
    )


def time_per_point(
    footprint: FootprintScale,
    traits: MethodTraits,
    machine: MachineSpec = A100,
) -> float:
    """Modelled seconds per grid point and timestep."""
    return cost_breakdown(footprint, traits, machine).total


def gstencil_per_second(
    footprint: FootprintScale,
    traits: MethodTraits,
    machine: MachineSpec = A100,
) -> float:
    """Modelled GStencil/s (Eq. 18): point-updates per nanosecond."""
    t = time_per_point(footprint, traits, machine)
    return 1.0 / t / 1e9
