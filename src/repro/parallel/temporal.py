"""Communication-avoiding temporal blocking for the cluster.

Instead of exchanging an ``h``-deep halo every timestep, each device
receives a ``k*h``-deep halo once and advances ``k`` steps locally on a
shrinking window (the classic overlapped/trapezoidal scheme).  For a
linear stencil this is *exact*:

* interior dependencies over ``k`` steps reach at most ``k*h`` cells;
* boundary windows re-impose the global boundary condition on their
  out-of-domain cells after every local step, reproducing the
  step-by-step trajectory bit for bit.

The payoff is fewer, larger messages: total halo traffic drops roughly
by ``k`` (the deep halo is ~``k``× one shallow halo but replaces ``k``
of them, and message *count* — the latency term — drops exactly ``k``×).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.cluster import SimulatedCluster
from repro.parallel.halo import HaloExchanger

__all__ = ["run_temporal_blocked", "temporal_halo_bytes"]


def temporal_halo_bytes(
    cluster: SimulatedCluster, steps: int, block_steps: int
) -> tuple[int, int]:
    """(per-step bytes, temporal-blocked bytes) for ``steps`` timesteps."""
    h = cluster.weights.radius
    per_step = sum(
        cluster.halo.bytes_per_exchange(s.rank) for s in cluster.part.subdomains
    )
    deep = HaloExchanger(cluster.part, h * block_steps, cluster.halo.boundary)
    per_deep = sum(
        deep.bytes_per_exchange(s.rank) for s in cluster.part.subdomains
    )
    rounds = -(-steps // block_steps)
    return per_step * steps, per_deep * rounds


def run_temporal_blocked(
    cluster: SimulatedCluster,
    field: np.ndarray,
    steps: int,
    block_steps: int,
) -> tuple[np.ndarray, int]:
    """Advance ``steps`` timesteps exchanging halos every ``block_steps``.

    Returns ``(final_field, exchanged_bytes)``.  Exact for any boundary
    condition the cluster supports (constant / periodic).
    """
    if block_steps < 1:
        raise ValueError(f"block_steps must be >= 1, got {block_steps}")
    if steps % block_steps != 0:
        raise ValueError(
            f"{steps} steps are not divisible by block_steps={block_steps}"
        )
    h = cluster.weights.radius
    part = cluster.part
    boundary = cluster.halo.boundary
    deep = HaloExchanger(part, h * block_steps, boundary)
    rows, cols = part.global_shape

    blocks = cluster.scatter(field)
    exchanged = 0
    for _ in range(steps // block_steps):
        windows = deep.exchange(blocks)
        exchanged += sum(
            deep.bytes_per_exchange(s.rank) for s in part.subdomains
        )
        new_blocks = {}
        for sub in part.subdomains:
            cur = windows[sub.rank]
            depth = block_steps * h
            for step_i in range(block_steps):
                cur = cluster.engines[sub.rank].apply(cur)
                depth -= h
                if boundary == "constant" and depth > 0:
                    # re-impose the Dirichlet boundary on window cells
                    # that lie outside the global domain
                    r_idx = np.arange(
                        sub.row_slice.start - depth, sub.row_slice.stop + depth
                    )
                    c_idx = np.arange(
                        sub.col_slice.start - depth, sub.col_slice.stop + depth
                    )
                    outside_r = (r_idx < 0) | (r_idx >= rows)
                    outside_c = (c_idx < 0) | (c_idx >= cols)
                    cur[outside_r, :] = 0.0
                    cur[:, outside_c] = 0.0
            new_blocks[sub.rank] = cur
        blocks = new_blocks
    return cluster.gather(blocks), exchanged
