"""Communication-avoiding temporal tiling for the cluster.

Instead of exchanging an ``h``-deep halo every timestep, each device
receives a deeper halo once per *round* and advances several steps
locally on a shrinking window.  The round structure comes from the
plan's :class:`~repro.parallel.plan.HaloSchedule`:

* ``trapezoid`` — one ``k*h``-deep exchange then ``k`` local steps (the
  classic overlapped trapezoid);
* ``diamond`` — two half-depth exchanges per round (shallower halos,
  one extra message) — every half-round is itself an exact trapezoid;
* a step count that does not divide ``block_steps`` simply ends with a
  ragged final round advancing the remainder.

For a linear stencil this is *exact*: interior dependencies over ``k``
steps reach at most ``k*h`` cells, and boundary windows re-impose the
global boundary condition between local steps, reproducing the
step-by-step trajectory bit for bit.  The payoff is fewer, larger
messages: total halo traffic drops roughly by ``k`` and message *count*
— the latency term — drops exactly ``k``×.

Execution happens through :meth:`~repro.parallel.cluster.
ClusterRuntime.run`, so temporal rounds compose with ``overlap=``,
``executor="process"``, ``simulate=``/``backend=`` and the fault
ladder.  Byte accounting comes from the halo exchanger's ledger — the
single source of truth — never re-summed here.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.parallel.cluster import ClusterRuntime

__all__ = ["run_temporal_blocked", "temporal_halo_bytes"]


def _runtime_of(cluster) -> ClusterRuntime:
    """The :class:`ClusterRuntime` behind any cluster-like object."""
    if isinstance(cluster, ClusterRuntime):
        return cluster
    return cluster.runtime


def temporal_halo_bytes(
    cluster,
    steps: int,
    block_steps: int,
    *,
    tiling: str = "trapezoid",
) -> tuple[int, int]:
    """(per-step bytes, temporal-blocked bytes) for ``steps`` timesteps.

    The model mirrors the execution exactly — one term per scheduled
    phase at that phase's halo depth — so it matches the measured
    exchanger ledger byte for byte, including ragged final rounds and
    diamond half-rounds.
    """
    runtime = _runtime_of(cluster)
    plan = runtime.plan
    schedule = replace(
        plan.schedule, block_steps=block_steps, tiling=tiling
    )
    per_step = (
        runtime.exchanger(plan.radius).total_bytes_per_exchange() * steps
    )
    blocked = sum(
        runtime.exchanger(schedule.depth(k)).total_bytes_per_exchange()
        for k in schedule.phases(steps)
    )
    return per_step, blocked


def run_temporal_blocked(
    cluster,
    field: np.ndarray,
    steps: int,
    block_steps: int,
    *,
    tiling: str = "trapezoid",
    **kwargs,
) -> tuple[np.ndarray, int]:
    """Advance ``steps`` timesteps exchanging halos every ``block_steps``.

    Returns ``(final_field, exchanged_bytes)``.  Exact for any boundary
    condition the cluster supports (constant / periodic), any dimension
    (1D/2D/3D), and both tilings; a non-divisible ``steps`` ends with a
    ragged final round.  ``**kwargs`` pass through to
    :meth:`~repro.parallel.cluster.ClusterRuntime.run` (``overlap=``,
    ``executor=``, ``simulate=``, fault-tolerance arguments, ...).
    """
    result = _runtime_of(cluster).run(
        field,
        steps,
        block_steps=block_steps,
        tiling=tiling,
        **kwargs,
    )
    return result.field, result.exchanged_bytes
