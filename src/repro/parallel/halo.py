"""Halo exchange with interconnect byte accounting (sync and async).

Each timestep, every device needs its block padded by the stencil
radius; the pad cells live on neighbouring devices (or on the global
boundary).  :class:`HaloExchanger` materializes those padded windows —
for 1D, 2D and 3D partitions — and counts every FP64 value that crosses
a device boundary, the quantity the cluster timing model charges to the
interconnect.

Two execution paths share one accounting source:

* :meth:`HaloExchanger.exchange` — the synchronous path: assemble,
  pad, slice, return windows.
* :meth:`HaloExchanger.exchange_async` — the ``cp.async``-modeled path:
  boundary data is committed into one of two alternating staging
  buffers at issue time (the async-copy *commit*), the pad + window
  materialization (the *transfer*) runs on a background lane, and
  :meth:`AsyncHaloHandle.wait` is the ``cp.async.wait_group`` barrier.
  The caller computes interior work between issue and wait; the
  windows returned are bit-identical to the synchronous path because
  the staging buffer snapshots the blocks before ``issue`` returns.

The data movement is performed through a global assembly (simulation
convenience); the byte accounting is computed per device from exact
ownership of every halo cell, which is what a point-to-point
implementation would transfer.  Every accounted byte lands exactly once
in :attr:`HaloExchanger.exchanged_bytes` *and* the process-wide
``repro_halo_bytes_total`` metrics counter — callers must never re-sum
``bytes_per_exchange`` on the side.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np

from repro.parallel.decomposition import Partition, Subdomain
from repro.telemetry.metrics import REGISTRY

__all__ = ["HaloExchanger", "AsyncHaloHandle", "HALO_BYTES_METRIC"]

_FP64 = 8

#: the process-wide counter every exchanged halo byte is folded into
HALO_BYTES_METRIC = "repro_halo_bytes_total"


def halo_bytes_counter():
    """The process-wide ``repro_halo_bytes_total`` metrics counter."""
    return REGISTRY.counter(
        HALO_BYTES_METRIC,
        help="FP64 bytes moved across device boundaries by halo exchanges",
    )


class AsyncHaloHandle:
    """An in-flight halo exchange (the ``cp.async`` commit → wait pair).

    Returned by :meth:`HaloExchanger.exchange_async`; :meth:`wait`
    blocks until the windows are materialized and returns them.  The
    handle resolves exactly one exchange — waiting twice returns the
    same windows without re-transferring (or re-accounting) anything.
    """

    def __init__(self, future: Future, bytes_issued: int) -> None:
        self._future = future
        #: interconnect bytes this exchange moved (already accounted)
        self.bytes_issued = bytes_issued

    @property
    def done(self) -> bool:
        """Whether the transfer has completed (non-blocking probe)."""
        return self._future.done()

    def wait(self) -> dict[int, np.ndarray]:
        """Block until arrival; returns every rank's padded window."""
        return self._future.result()


class HaloExchanger:
    """Pads every subdomain from its neighbours each step."""

    def __init__(
        self,
        part: Partition,
        radius: int,
        boundary: str = "constant",
    ) -> None:
        if boundary not in ("constant", "periodic"):
            raise ValueError(
                f"halo exchange supports 'constant' or 'periodic', got {boundary!r}"
            )
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.part = part
        self.radius = radius
        self.boundary = boundary
        #: total interconnect bytes this exchanger has moved — the single
        #: source of truth for halo traffic (mirrored into the
        #: ``repro_halo_bytes_total`` metrics counter)
        self.exchanged_bytes = 0
        self._remote_cells = {
            sub.rank: self._count_remote_cells(sub) for sub in part.subdomains
        }
        # cp.async double buffer: two staging buffers alternate between
        # consecutive exchanges, so issue N+1 never overwrites the data
        # transfer N is still reading
        self._buffers: list[np.ndarray | None] = [None, None]
        self._buf_idx = 0
        self._lane: ThreadPoolExecutor | None = None
        self._in_flight: AsyncHaloHandle | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def bytes_per_exchange(self, rank: int) -> int:
        """Interconnect bytes one device receives per exchange."""
        return self._remote_cells[rank] * _FP64

    def total_bytes_per_exchange(self) -> int:
        """Interconnect bytes one full exchange moves (all ranks)."""
        return sum(
            self.bytes_per_exchange(s.rank) for s in self.part.subdomains
        )

    def _count_remote_cells(self, sub: Subdomain) -> int:
        """Halo cells of ``sub`` owned by a *different* device.

        Both the valid-cell and the locally-owned-cell masks are outer
        products of per-axis masks, so the 2D ``(valid & ~local).sum()``
        generalizes to any dimension as a difference of products of the
        per-axis sums.
        """
        h = self.radius
        n_valid = 1
        n_local = 1
        for ax, n in enumerate(self.part.global_shape):
            idx = np.arange(sub.slices[ax].start - h, sub.slices[ax].stop + h)
            if self.boundary == "periodic":
                src = idx % n
                valid = np.ones_like(idx, dtype=bool)
            else:
                valid = (idx >= 0) & (idx < n)
                src = np.clip(idx, 0, n - 1)
            local = (src >= sub.slices[ax].start) & (src < sub.slices[ax].stop)
            n_valid *= int(valid.sum())
            n_local *= int((valid & local).sum())
        return n_valid - n_local

    # ------------------------------------------------------------------
    def _assemble(self, blocks: dict[int, np.ndarray]) -> np.ndarray:
        """Copy every rank's block into the current staging buffer.

        This is the ``cp.async`` *commit*: after it returns, the source
        blocks may be overwritten — the exchange reads the snapshot.
        """
        buf = self._buffers[self._buf_idx]
        if buf is None or buf.shape != self.part.global_shape:
            buf = np.empty(self.part.global_shape, dtype=np.float64)
            self._buffers[self._buf_idx] = buf
        self._buf_idx = 1 - self._buf_idx
        for sub in self.part.subdomains:
            block = np.asarray(blocks[sub.rank], dtype=np.float64)
            if block.shape != sub.shape:
                raise ValueError(
                    f"rank {sub.rank} block has shape {block.shape}, "
                    f"expected {sub.shape}"
                )
            buf[sub.slices] = block
        return buf

    def _materialize(self, global_arr: np.ndarray) -> dict[int, np.ndarray]:
        """Pad the assembled grid and slice out every rank's window."""
        h = self.radius
        mode = "wrap" if self.boundary == "periodic" else "constant"
        padded_global = np.pad(global_arr, h, mode=mode)
        # kept for retransmission: a receiver that detects a corrupted
        # window re-requests it from this (sender-side) padded snapshot
        self._last_padded = padded_global
        return {
            sub.rank: padded_global[sub.window_slices(h)].copy()
            for sub in self.part.subdomains
        }

    def retransmit(self, rank: int) -> np.ndarray:
        """Re-send one rank's window from the last exchange's snapshot.

        Models the receiver-driven retransmission of a halo transfer
        that failed strip-checksum verification: the sender still holds
        the padded snapshot, so the replacement window is sliced from
        identical bits.  The re-sent bytes are real interconnect
        traffic — they fold into :attr:`exchanged_bytes` and the
        process counter like any first transmission.
        """
        padded = getattr(self, "_last_padded", None)
        if padded is None:
            raise RuntimeError("no exchange to retransmit from")
        sub = next(s for s in self.part.subdomains if s.rank == rank)
        moved = self.bytes_per_exchange(rank)
        with self._lock:
            self.exchanged_bytes += moved
        halo_bytes_counter().inc(moved)
        return padded[sub.window_slices(self.radius)].copy()

    def _account(self) -> int:
        """Fold one full exchange into the byte ledgers; returns bytes."""
        moved = self.total_bytes_per_exchange()
        with self._lock:
            self.exchanged_bytes += moved
        halo_bytes_counter().inc(moved)
        return moved

    # ------------------------------------------------------------------
    def exchange(self, blocks: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """One synchronous halo exchange: every rank's padded window."""
        global_arr = self._assemble(blocks)
        self._account()
        return self._materialize(global_arr)

    def exchange_async(
        self, blocks: dict[int, np.ndarray]
    ) -> AsyncHaloHandle:
        """Issue a halo exchange; returns a waitable handle.

        The commit (block snapshot into the staging buffer) happens
        before this returns; the transfer (pad + window materialization)
        proceeds on the exchanger's background lane while the caller
        computes interior work.  At most one exchange may be in flight —
        the two staging buffers back one transfer and one commit.
        """
        with self._lock:
            if self._in_flight is not None and not self._in_flight.done:
                raise RuntimeError(
                    "an async halo exchange is already in flight; wait() "
                    "on its handle before issuing another (double buffer)"
                )
        global_arr = self._assemble(blocks)
        moved = self._account()
        if self._lane is None:
            self._lane = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="halo-dma"
            )
        future = self._lane.submit(self._materialize, global_arr)
        handle = AsyncHaloHandle(future, moved)
        with self._lock:
            self._in_flight = handle
        return handle
