"""Halo exchange with interconnect byte accounting.

Each timestep, every device needs its block padded by the stencil
radius; the pad cells live on neighbouring devices (or on the global
boundary).  :class:`HaloExchanger` materializes those padded windows
and counts every FP64 value that crosses a device boundary — the
quantity the cluster timing model charges to the interconnect.

The data movement is performed through a global assembly (simulation
convenience); the byte accounting is computed per device from exact
ownership of every halo cell, which is what a point-to-point
implementation would transfer.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.decomposition import Partition, Subdomain

__all__ = ["HaloExchanger"]

_FP64 = 8


class HaloExchanger:
    """Pads every subdomain from its neighbours each step."""

    def __init__(
        self,
        part: Partition,
        radius: int,
        boundary: str = "constant",
    ) -> None:
        if boundary not in ("constant", "periodic"):
            raise ValueError(
                f"halo exchange supports 'constant' or 'periodic', got {boundary!r}"
            )
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.part = part
        self.radius = radius
        self.boundary = boundary
        self.exchanged_bytes = 0
        self._remote_cells = {
            sub.rank: self._count_remote_cells(sub) for sub in part.subdomains
        }

    # ------------------------------------------------------------------
    def bytes_per_exchange(self, rank: int) -> int:
        """Interconnect bytes one device receives per exchange."""
        return self._remote_cells[rank] * _FP64

    def _count_remote_cells(self, sub: Subdomain) -> int:
        """Halo cells of ``sub`` owned by a *different* device."""
        h = self.radius
        rows, cols = self.part.global_shape
        r_idx = np.arange(sub.row_slice.start - h, sub.row_slice.stop + h)
        c_idx = np.arange(sub.col_slice.start - h, sub.col_slice.stop + h)
        if self.boundary == "periodic":
            r_src, c_src = r_idx % rows, c_idx % cols
            r_valid = np.ones_like(r_idx, dtype=bool)
            c_valid = np.ones_like(c_idx, dtype=bool)
        else:
            r_valid = (r_idx >= 0) & (r_idx < rows)
            c_valid = (c_idx >= 0) & (c_idx < cols)
            r_src, c_src = np.clip(r_idx, 0, rows - 1), np.clip(c_idx, 0, cols - 1)
        r_local = (r_src >= sub.row_slice.start) & (r_src < sub.row_slice.stop)
        c_local = (c_src >= sub.col_slice.start) & (c_src < sub.col_slice.stop)
        valid = np.outer(r_valid, c_valid)
        local = np.outer(r_local, c_local)
        return int((valid & ~local).sum())

    # ------------------------------------------------------------------
    def exchange(self, blocks: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """One halo exchange: returns the padded window of every rank."""
        rows, cols = self.part.global_shape
        global_arr = np.empty((rows, cols), dtype=np.float64)
        for sub in self.part.subdomains:
            block = np.asarray(blocks[sub.rank], dtype=np.float64)
            if block.shape != sub.shape:
                raise ValueError(
                    f"rank {sub.rank} block has shape {block.shape}, "
                    f"expected {sub.shape}"
                )
            global_arr[sub.row_slice, sub.col_slice] = block

        h = self.radius
        mode = "wrap" if self.boundary == "periodic" else "constant"
        padded_global = np.pad(global_arr, h, mode=mode)

        windows: dict[int, np.ndarray] = {}
        for sub in self.part.subdomains:
            windows[sub.rank] = padded_global[
                sub.row_slice.start : sub.row_slice.stop + 2 * h,
                sub.col_slice.start : sub.col_slice.stop + 2 * h,
            ].copy()
            self.exchanged_bytes += self.bytes_per_exchange(sub.rank)
        return windows
