"""The distribution pass: grid → ``DistributedPlan``.

The lowering pipeline (:mod:`repro.core.lowering`) stages one device's
compilation; :func:`distribute` extends it with the cluster-level
stages, run through the same :class:`~repro.core.lowering.PassPipeline`
machinery (each under a ``lowering.<pass>`` span, wall time recorded on
the artifact):

* ``partition`` — block-partition the global grid onto the device mesh
  (:func:`repro.parallel.decomposition.partition`);
* ``halo_schedule`` — derive the :class:`HaloSchedule`: how deep each
  exchange is and how many local steps each round advances, for
  per-step, trapezoid and diamond temporal tilings;
* ``compile_ranks`` — compile the per-rank executable through
  ``repro.compile``.  Every rank runs the *same* stencil, so the plan
  cache collapses the mesh onto one :class:`~repro.runtime.plan.
  StencilPlan`; the per-rank ``TileProgram``/``VectorProgram`` views are
  shared read-only references, exactly like SM-replicated SASS.

The resulting :class:`DistributedPlan` is what the cluster runtime
(:mod:`repro.parallel.cluster`) executes: it carries the partition, the
halo schedule, and the compiled single-device plan — so distributed
runs inherit ``backend=``, the plan cache, fault injection/ABFT and
telemetry from the runtime instead of bypassing them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import OptimizationConfig
from repro.core.lowering import PassPipeline
from repro.parallel.decomposition import Partition, partition
from repro.parallel.halo import HaloExchanger

__all__ = ["HaloSchedule", "DistributedPlan", "distribute", "TILINGS"]

#: temporal tilings the halo schedule understands
TILINGS = ("trapezoid", "diamond")


@dataclass(frozen=True)
class HaloSchedule:
    """When to exchange, how deep, and how far each round advances.

    ``block_steps = 1`` is the classic per-step exchange.  For
    ``block_steps = k > 1``:

    * ``trapezoid`` — one ``k*h``-deep exchange per round, then ``k``
      local steps on a shrinking window (the overlapped trapezoid);
    * ``diamond`` — each ``k``-step round splits into two half-rounds
      of ``ceil(k/2)`` and ``floor(k/2)`` steps.  Halos are about half
      as deep (less redundant ghost-zone compute, smaller messages) at
      the price of one extra message per round — the communication
      shape of diamond tiling, still bit-exact because every half-round
      is itself an exact trapezoid.

    A step count that does not divide ``block_steps`` ends with a
    ragged final round advancing the remainder (never an error).
    """

    radius: int
    block_steps: int
    tiling: str = "trapezoid"
    boundary: str = "constant"

    def __post_init__(self) -> None:
        if self.block_steps < 1:
            raise ValueError(
                f"block_steps must be >= 1, got {self.block_steps}"
            )
        if self.tiling not in TILINGS:
            raise ValueError(
                f"tiling must be one of {TILINGS}, got {self.tiling!r}"
            )
        if self.boundary not in ("constant", "periodic"):
            raise ValueError(
                f"boundary must be 'constant' or 'periodic', "
                f"got {self.boundary!r}"
            )

    def phases(self, steps: int) -> tuple[int, ...]:
        """Local step count of every exchange round covering ``steps``.

        One entry per halo exchange; entries sum to ``steps``.  The
        final round is ragged when ``steps % block_steps != 0``.
        """
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        out: list[int] = []
        remaining = steps
        while remaining > 0:
            r = min(self.block_steps, remaining)
            if self.tiling == "diamond" and r > 1:
                out.extend((-(-r // 2), r // 2))
            else:
                out.append(r)
            remaining -= r
        return tuple(out)

    def depth(self, phase_steps: int) -> int:
        """Halo depth one exchange needs to cover ``phase_steps`` steps."""
        return self.radius * phase_steps

    def rounds(self, steps: int) -> int:
        """Number of exchanges (messages per rank) covering ``steps``."""
        return len(self.phases(steps))

    def describe(self) -> str:
        """Human-readable one-line schedule summary."""
        return (
            f"{self.tiling} tiling, block_steps={self.block_steps}, "
            f"radius={self.radius}, boundary={self.boundary!r}"
        )


@dataclass(frozen=True)
class DistributedPlan:
    """A partitioned, scheduled, per-rank-compiled distributed stencil.

    The cluster-level analogue of :class:`~repro.runtime.plan.
    StencilPlan`: immutable after :func:`distribute`, cheap to share.
    ``compiled`` is the single-device :class:`~repro.runtime.facade.
    CompiledStencil` every rank executes (plan-cache-deduplicated).
    """

    key: str
    part: Partition
    schedule: HaloSchedule
    backend: str
    compiled: Any = field(repr=False, compare=False)
    pass_times: tuple[tuple[str, float], ...] = field(
        default=(), compare=False
    )
    #: the weights object handed to :func:`distribute` (a
    #: :class:`~repro.stencil.weights.StencilWeights` when the caller had
    #: one) — the scaling-time model needs its pattern metadata
    source_weights: Any = field(default=None, repr=False, compare=False)

    @property
    def ndim(self) -> int:
        return self.part.ndim

    @property
    def radius(self) -> int:
        return self.schedule.radius

    @property
    def global_shape(self) -> tuple[int, ...]:
        return self.part.global_shape

    @property
    def mesh(self) -> tuple[int, ...]:
        return self.part.mesh

    @property
    def num_devices(self) -> int:
        return self.part.num_devices

    def program(self, rank: int = 0):
        """The rank's scheduled ``TileProgram`` (shared across ranks)."""
        return self.compiled.plan.program

    def vector_program(self, rank: int = 0):
        """The rank's ``VectorProgram`` (shared; None off tensor cores)."""
        tile = self.compiled.plan.lowered.tile
        return tile.vector if tile is not None else None

    def exchanger(self, depth: int | None = None) -> HaloExchanger:
        """A fresh halo exchanger over this plan's partition.

        ``depth`` defaults to the stencil radius (per-step exchange);
        temporal rounds pass ``schedule.depth(phase_steps)``.
        """
        return HaloExchanger(
            self.part,
            self.radius if depth is None else depth,
            self.schedule.boundary,
        )

    def describe(self) -> str:
        """Human-readable one-line plan summary."""
        return (
            f"DistributedPlan {self.key[:12]}…: grid {self.global_shape} "
            f"on mesh {self.mesh} ({self.num_devices} device(s)), "
            f"{self.schedule.describe()}, backend {self.backend!r}, "
            f"rank plan {self.compiled.key[:12]}…"
        )


@dataclass
class _DistributionContext:
    """Mutable state threaded through the distribution passes."""

    weights: Any
    ndim: int
    global_shape: tuple[int, ...]
    mesh: tuple[int, ...]
    boundary: str
    block_steps: int
    tiling: str
    backend: str | None
    config: OptimizationConfig | None
    tile_shape: tuple[int, int] | None
    cache: Any
    part: Partition | None = None
    schedule: HaloSchedule | None = None
    compiled: Any = None
    pass_times: list = field(default_factory=list)


def _pass_partition(ctx: _DistributionContext) -> None:
    ctx.part = partition(ctx.global_shape, ctx.mesh)


def _pass_halo_schedule(ctx: _DistributionContext) -> None:
    from repro.runtime.plan import canonical_weights

    arr, _ = canonical_weights(ctx.weights, ctx.ndim)
    radius = (arr.shape[0] - 1) // 2
    ctx.schedule = HaloSchedule(
        radius=radius,
        block_steps=ctx.block_steps,
        tiling=ctx.tiling,
        boundary=ctx.boundary,
    )


def _pass_compile_ranks(ctx: _DistributionContext) -> None:
    # resolved lazily: repro.runtime imports nothing from repro.parallel,
    # but keeping the import local mirrors the engines' convention
    from repro.runtime import facade

    kwargs: dict[str, Any] = dict(
        ndim=ctx.ndim,
        config=ctx.config,
        tile_shape=ctx.tile_shape,
        backend=ctx.backend,
    )
    if ctx.cache is not _CACHE_DEFAULT:
        kwargs["cache"] = ctx.cache
    ctx.compiled = facade.compile(ctx.weights, **kwargs)


_CACHE_DEFAULT = object()

#: the distribution pipeline: cluster-level lowering stages
DISTRIBUTION_PASSES = (
    ("partition", _pass_partition),
    ("halo_schedule", _pass_halo_schedule),
    ("compile_ranks", _pass_compile_ranks),
)


def distribute(
    weights,
    global_shape: tuple[int, ...],
    mesh: tuple[int, ...],
    *,
    boundary: str = "constant",
    block_steps: int = 1,
    tiling: str = "trapezoid",
    backend: str | None = None,
    config: OptimizationConfig | None = None,
    tile_shape: tuple[int, int] | None = None,
    cache=_CACHE_DEFAULT,
) -> DistributedPlan:
    """Partition, schedule and compile one distributed stencil.

    The cluster-level front door: runs the distribution passes (each
    under a ``lowering.<pass>`` span) and returns the immutable
    :class:`DistributedPlan` the cluster runtime executes.  ``backend``,
    ``config``, ``tile_shape`` and ``cache`` thread straight into
    ``repro.compile`` — a distributed plan is a single-device plan plus
    a partition and a halo schedule, never a separate compilation
    universe.
    """
    from repro.runtime.plan import canonical_weights

    arr, ndim = canonical_weights(weights, None)
    global_shape = tuple(int(n) for n in global_shape)
    mesh = tuple(int(m) for m in mesh)
    if len(global_shape) != ndim:
        raise ValueError(
            f"{ndim}D stencil cannot partition a "
            f"{len(global_shape)}D grid {global_shape}"
        )
    ctx = _DistributionContext(
        weights=weights,
        ndim=ndim,
        global_shape=global_shape,
        mesh=mesh,
        boundary=boundary,
        block_steps=block_steps,
        tiling=tiling,
        backend=backend,
        config=config,
        tile_shape=tile_shape,
        cache=cache,
    )
    PassPipeline(DISTRIBUTION_PASSES).run(ctx)
    digest = hashlib.sha256()
    digest.update(b"repro-distributed-plan-v1")
    digest.update(ctx.compiled.key.encode())
    digest.update(repr((global_shape, mesh)).encode())
    digest.update(
        repr((boundary, block_steps, tiling, ctx.compiled.plan.backend)).encode()
    )
    return DistributedPlan(
        key=digest.hexdigest(),
        part=ctx.part,
        schedule=ctx.schedule,
        backend=ctx.compiled.plan.backend,
        compiled=ctx.compiled,
        pass_times=tuple(ctx.pass_times),
        source_weights=weights,
    )
