"""Deterministic checkpoint/restart for cluster runs.

A :class:`ClusterCheckpoint` freezes a :class:`~repro.parallel.cluster.
ClusterRuntime` run at a temporal-round barrier — the only points where
every rank's block is globally consistent (the fold after a round's
compute+exchange completes).  The snapshot carries everything needed to
continue *bit-identically*:

* every rank's block (the full distributed state — FP64, lossless);
* the halo ledger (per-round byte log plus the reconciled running
  total), so the three-ledger reconciliation still balances across a
  resume;
* the round index and phase schedule;
* the fault injector's firing clocks (one-shot faults already spent
  before the checkpoint must not re-fire after a resume);
* the run's ``trace_id`` (a resumed run continues the same trace).

The manifest is content-hashed over the plan key, round index, block
bytes, and ledger — :func:`load_checkpoint` refuses a tampered or
truncated snapshot rather than resuming from silently wrong state.
Files are written atomically (tmp + rename) so a kill *during* a save
leaves the previous checkpoint intact.

On-disk layout (``ckpt-000003`` = the checkpoint taken after round 3)::

    <dir>/ckpt-000003.npz    per-rank blocks (rank_0, rank_1, ...)
    <dir>/ckpt-000003.json   manifest (schema repro.parallel.checkpoint/v1)
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.telemetry.log import emit as emit_event
from repro.telemetry.metrics import REGISTRY

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointHalt",
    "CheckpointConfig",
    "ClusterCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
]

#: Schema identifier stamped into every checkpoint manifest.
CHECKPOINT_SCHEMA = "repro.parallel.checkpoint/v1"


class CheckpointError(ReproError):
    """A checkpoint could not be saved, found, or verified."""


class CheckpointHalt(ReproError):
    """Deliberate halt after saving the requested checkpoint.

    Raised by the cluster runtime when ``CheckpointConfig.halt_after``
    names the round just completed — the deterministic "kill" the
    chaos suite and the CI smoke use to exercise resume.  Carries the
    saved checkpoint's path and round index.
    """

    def __init__(self, path: str, round_index: int) -> None:
        super().__init__(
            f"halted after checkpoint at round {round_index} ({path})"
        )
        self.path = path
        self.round_index = round_index


@dataclass(frozen=True)
class CheckpointConfig:
    """How a cluster run checkpoints.

    ``dir`` receives the snapshots; ``every`` saves at each N-th
    temporal-round barrier (1 = every round); ``halt_after`` stops the
    run (with :class:`CheckpointHalt`) right after saving at that round
    — the deterministic mid-run kill; ``keep`` bounds retained
    snapshots (oldest pruned first; ``None`` keeps all).
    """

    dir: str
    every: int = 1
    halt_after: int | None = None
    keep: int | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {self.every}"
            )
        if self.keep is not None and self.keep < 1:
            raise CheckpointError(
                f"checkpoint keep must be >= 1, got {self.keep}"
            )


@dataclass
class ClusterCheckpoint:
    """One frozen cluster-run barrier (see the module docstring)."""

    plan_key: str
    round_index: int
    phases: list[int]
    steps: int
    exchanged_bytes: int
    round_log: list[dict[str, Any]]
    blocks: dict[int, np.ndarray]
    mesh: tuple[int, ...]
    global_shape: tuple[int, ...]
    trace_id: str | None = None
    fault_state: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    content_hash: str = ""
    path: str = ""


def _content_hash(
    plan_key: str,
    round_index: int,
    blocks: dict[int, np.ndarray],
    exchanged_bytes: int,
    round_log: list[dict[str, Any]],
) -> str:
    """SHA-256 binding the snapshot's state to its plan and ledger."""
    digest = hashlib.sha256()
    digest.update(plan_key.encode())
    digest.update(str(round_index).encode())
    digest.update(str(exchanged_bytes).encode())
    digest.update(
        json.dumps(round_log, sort_keys=True, separators=(",", ":")).encode()
    )
    for rank in sorted(blocks):
        arr = np.ascontiguousarray(blocks[rank], dtype=np.float64)
        digest.update(str(rank).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _saves_counter():
    return REGISTRY.counter(
        "repro_checkpoint_saves_total",
        help="cluster checkpoints written to disk",
    )


def _restores_counter():
    return REGISTRY.counter(
        "repro_checkpoint_restores_total",
        help="cluster checkpoints loaded for a resume",
    )


def _bytes_counter():
    return REGISTRY.counter(
        "repro_checkpoint_bytes_total",
        help="bytes of block state written into cluster checkpoints",
    )


def _paths(directory: str, round_index: int) -> tuple[str, str]:
    stem = os.path.join(directory, f"ckpt-{round_index:06d}")
    return stem + ".npz", stem + ".json"


def save_checkpoint(
    directory: str,
    *,
    plan_key: str,
    round_index: int,
    phases: list[int],
    steps: int,
    exchanged_bytes: int,
    round_log: list[dict[str, Any]],
    blocks: dict[int, np.ndarray],
    mesh: tuple[int, ...],
    global_shape: tuple[int, ...],
    trace_id: str | None = None,
    fault_state: dict[str, Any] | None = None,
    meta: dict[str, Any] | None = None,
    keep: int | None = None,
) -> ClusterCheckpoint:
    """Write one barrier snapshot atomically; returns the checkpoint."""
    os.makedirs(directory, exist_ok=True)
    npz_path, json_path = _paths(directory, round_index)
    arrays = {
        f"rank_{rank}": np.ascontiguousarray(block, dtype=np.float64)
        for rank, block in blocks.items()
    }
    block_bytes = sum(a.nbytes for a in arrays.values())
    content_hash = _content_hash(
        plan_key, round_index, blocks, exchanged_bytes, round_log
    )
    manifest = {
        "schema": CHECKPOINT_SCHEMA,
        "plan_key": plan_key,
        "round_index": round_index,
        "phases": [int(p) for p in phases],
        "steps": int(steps),
        "exchanged_bytes": int(exchanged_bytes),
        "round_log": round_log,
        "ranks": sorted(int(r) for r in blocks),
        "mesh": [int(m) for m in mesh],
        "global_shape": [int(n) for n in global_shape],
        "trace_id": trace_id,
        "fault_state": fault_state,
        "meta": meta or {},
        "content_hash": content_hash,
    }
    tmp_npz = npz_path + ".tmp"
    tmp_json = json_path + ".tmp"
    try:
        with open(tmp_npz, "wb") as fh:
            np.savez(fh, **arrays)
        with open(tmp_json, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        # blocks land before the manifest: a manifest on disk always
        # points at a complete npz
        os.replace(tmp_npz, npz_path)
        os.replace(tmp_json, json_path)
    except OSError as exc:
        for tmp in (tmp_npz, tmp_json):
            if os.path.exists(tmp):
                os.remove(tmp)
        raise CheckpointError(
            f"could not write checkpoint at round {round_index}: {exc}"
        ) from exc
    _saves_counter().inc()
    _bytes_counter().inc(block_bytes)
    emit_event(
        "checkpoint.saved",
        message=f"checkpoint saved at round barrier {round_index}",
        round=round_index,
        path=json_path,
        block_bytes=block_bytes,
        ranks=len(blocks),
    )
    if keep is not None:
        for stale in list_checkpoints(directory)[:-keep]:
            for path in _paths(directory, stale):
                if os.path.exists(path):
                    os.remove(path)
    return ClusterCheckpoint(
        plan_key=plan_key,
        round_index=round_index,
        phases=[int(p) for p in phases],
        steps=int(steps),
        exchanged_bytes=int(exchanged_bytes),
        round_log=round_log,
        blocks=dict(blocks),
        mesh=tuple(mesh),
        global_shape=tuple(global_shape),
        trace_id=trace_id,
        fault_state=fault_state,
        meta=meta or {},
        content_hash=content_hash,
        path=json_path,
    )


def list_checkpoints(directory: str) -> list[int]:
    """Round indices with a complete snapshot, oldest first."""
    if not os.path.isdir(directory):
        return []
    rounds = []
    for name in os.listdir(directory):
        if name.startswith("ckpt-") and name.endswith(".json"):
            stem = name[len("ckpt-") : -len(".json")]
            if stem.isdigit():
                round_index = int(stem)
                npz_path, _ = _paths(directory, round_index)
                if os.path.exists(npz_path):
                    rounds.append(round_index)
    return sorted(rounds)


def load_checkpoint(
    directory: str, round_index: int | None = None
) -> ClusterCheckpoint:
    """Load (and verify) a snapshot; latest barrier by default."""
    rounds = list_checkpoints(directory)
    if not rounds:
        raise CheckpointError(f"no checkpoints found in {directory!r}")
    if round_index is None:
        round_index = rounds[-1]
    elif round_index not in rounds:
        raise CheckpointError(
            f"no checkpoint for round {round_index} in {directory!r}; "
            f"available: {rounds}"
        )
    npz_path, json_path = _paths(directory, round_index)
    try:
        with open(json_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {json_path!r}: {exc}"
        ) from exc
    if manifest.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema {manifest.get('schema')!r} "
            f"(expected {CHECKPOINT_SCHEMA!r})"
        )
    try:
        with np.load(npz_path) as npz:
            blocks = {
                int(name[len("rank_") :]): np.array(
                    npz[name], dtype=np.float64
                )
                for name in npz.files
            }
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint blocks {npz_path!r}: {exc}"
        ) from exc
    expected = _content_hash(
        manifest["plan_key"],
        int(manifest["round_index"]),
        blocks,
        int(manifest["exchanged_bytes"]),
        manifest["round_log"],
    )
    if expected != manifest.get("content_hash"):
        raise CheckpointError(
            f"checkpoint {json_path!r} failed content verification — "
            "the snapshot was modified or truncated after it was saved"
        )
    _restores_counter().inc()
    emit_event(
        "checkpoint.restored",
        message=f"checkpoint restored from round barrier {round_index}",
        round=round_index,
        path=json_path,
        ranks=len(blocks),
    )
    return ClusterCheckpoint(
        plan_key=manifest["plan_key"],
        round_index=int(manifest["round_index"]),
        phases=[int(p) for p in manifest["phases"]],
        steps=int(manifest["steps"]),
        exchanged_bytes=int(manifest["exchanged_bytes"]),
        round_log=manifest["round_log"],
        blocks=blocks,
        mesh=tuple(int(m) for m in manifest["mesh"]),
        global_shape=tuple(int(n) for n in manifest["global_shape"]),
        trace_id=manifest.get("trace_id"),
        fault_state=manifest.get("fault_state"),
        meta=manifest.get("meta", {}),
        content_hash=manifest["content_hash"],
        path=json_path,
    )
