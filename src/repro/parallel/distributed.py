"""Distributed window advance: shrinking windows, overlap split, workers.

The numerical core the cluster runtime executes, shared by every
dimension (1D/2D/3D), both boundaries, and all three executors
(serial / thread / process):

* :func:`advance_window` — advance ``steps`` local timesteps on a
  halo-deep window, re-imposing the global Dirichlet boundary on
  out-of-domain cells between steps (the exact trapezoid of
  ``run_temporal_blocked``, generalized to N dimensions);
* :func:`frame_regions` — split a block's output region into a
  ``depth``-inset interior and the boundary frame strips.  The interior
  depends only on the rank's own block, so it computes *while the halo
  transfer is in flight*; the strips compute after arrival from
  sub-windows of the deep window.  Both routes evaluate the identical
  per-point FP chains, so the stitched result is bit-identical to the
  full-window advance (the overlap-equivalence suite asserts it);
* :func:`process_advance` / :func:`_process_worker` — one rank's round
  dispatched to a worker *process*: the child compiles through
  ``repro.compile`` against its own per-process plan cache (warm across
  rounds), records spans on a private tracer, and ships them back as
  dicts; the parent revives them under its captured
  :class:`~repro.telemetry.context.TraceContext` — one merged trace
  across process boundaries.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "advance_window",
    "frame_regions",
    "interior_of",
    "strip_window",
    "process_advance",
]

Region = tuple  # tuple[slice, ...] over block output coordinates


def _impose_dirichlet(
    cur: np.ndarray,
    origin: Sequence[int],
    global_shape: Sequence[int],
) -> None:
    """Zero every window cell lying outside the global domain.

    The constant-boundary condition holds exact zeros outside the
    domain; re-imposing them between local steps reproduces the
    step-by-step global pad bit for bit (0.0 is exactly representable,
    so this is not an approximation).
    """
    for ax, n in enumerate(global_shape):
        idx = origin[ax] + np.arange(cur.shape[ax])
        outside = (idx < 0) | (idx >= n)
        if outside.any():
            cur[(slice(None),) * ax + (outside,)] = 0.0


def advance_window(
    apply_fn: Callable[[np.ndarray], np.ndarray],
    window: np.ndarray,
    origin: Sequence[int],
    global_shape: Sequence[int],
    boundary: str,
    steps: int,
    h: int,
) -> np.ndarray:
    """Advance ``steps`` local timesteps on a shrinking window.

    ``window`` is padded ``steps * h`` deep per side; ``origin`` is the
    global coordinate of ``window[0, ...]`` (negative along global
    edges).  Each application shrinks the window by ``h`` per side; for
    the constant boundary, out-of-domain cells are re-zeroed between
    steps.  Returns the final array (the window shrunk to its core).

    ``apply_fn`` is any padded-in/interior-out stencil application —
    the functional engine, a simulated-sweep closure accumulating
    counters, either backend: the per-output-point FP chains are
    independent of the window extent, so the trajectory is bit-identical
    to a global-grid advance restricted to the same cells.
    """
    cur = window
    origin = list(origin)
    for s in range(steps):
        cur = apply_fn(cur)
        origin = [o + h for o in origin]
        if boundary == "constant" and s + 1 < steps:
            _impose_dirichlet(cur, origin, global_shape)
    return cur


def frame_regions(
    shape: Sequence[int], depth: int
) -> tuple[Region | None, list[Region]]:
    """Split a block into a ``depth``-inset interior and frame strips.

    Returns ``(interior, strips)`` over block output coordinates; the
    strips tile the complement of the interior (the onion
    decomposition: axis 0 takes the full-width top/bottom slabs, axis 1
    the remaining left/right strips, and so on).  When the block is too
    small to hold an interior, ``interior`` is ``None`` and the single
    strip covers the whole block.
    """
    shape = tuple(int(n) for n in shape)
    if depth <= 0:
        return tuple(slice(0, n) for n in shape), []
    if any(n <= 2 * depth for n in shape):
        return None, [tuple(slice(0, n) for n in shape)]
    interior = tuple(slice(depth, n - depth) for n in shape)
    strips: list[Region] = []
    for ax in range(len(shape)):
        lead = [slice(depth, shape[a] - depth) for a in range(ax)]
        tail = [slice(0, shape[a]) for a in range(ax + 1, len(shape))]
        strips.append(tuple(lead + [slice(0, depth)] + tail))
        strips.append(
            tuple(lead + [slice(shape[ax] - depth, shape[ax])] + tail)
        )
    return interior, strips


def interior_of(
    apply_fn: Callable[[np.ndarray], np.ndarray],
    block: np.ndarray,
    sub,
    global_shape: Sequence[int],
    boundary: str,
    steps: int,
    h: int,
) -> np.ndarray:
    """The interior region advanced ``steps`` steps from the block alone.

    The dependency cone of output cells ``steps * h`` away from the
    block edge never leaves the block, so this needs *no halo* — it is
    the compute the overlapped pipeline performs while the exchange is
    in flight.  Returns the advanced interior (shape shrunk by
    ``steps * h`` per side).
    """
    origin = tuple(s.start for s in sub.slices)
    return advance_window(
        apply_fn, block, origin, global_shape, boundary, steps, h
    )


def strip_window(window: np.ndarray, region: Region, depth: int) -> np.ndarray:
    """The deep-window sub-window whose advance yields ``region``.

    ``window`` is the rank's ``depth``-deep exchanged window; the
    returned view is the strip's output region expanded by ``depth``
    per axis (block coordinate ``c`` maps to window coordinate
    ``c + depth``, so the expanded slice starts at ``region.start``).
    """
    return window[tuple(slice(r.start, r.stop + 2 * depth) for r in region)]


# ---------------------------------------------------------------------------
# multi-process rank workers
# ---------------------------------------------------------------------------
def _process_worker(payload: dict) -> dict:
    """One rank's round, executed inside a worker process.

    Compiles through ``repro.compile`` (the child's process-wide plan
    cache keeps the plan warm across rounds — the pool reuses worker
    processes), advances the shipped window, and returns the block
    plus serialized counters/spans for parent-side revival.
    """
    from repro.runtime import facade
    from repro.telemetry.export import span_to_dict
    from repro.telemetry.spans import Tracer
    from repro.tcu.counters import EventCounters

    t0_ns = time.perf_counter_ns()
    compiled = facade.compile(
        payload["weights"], ndim=payload["ndim"], backend=payload["backend"]
    )
    tracer = Tracer()
    if payload.get("traced"):
        tracer.enable()
    counters = EventCounters() if payload["simulate"] else None

    def apply_fn(win: np.ndarray) -> np.ndarray:
        if counters is None:
            return compiled.runtime.apply(win)
        out, ev = compiled.runtime.apply_simulated(
            win, backend=payload["backend"]
        )
        counters.__iadd__(ev)
        return out

    with tracer.span(
        "cluster.rank",
        category="parallel",
        rank=payload["rank"],
        pid=os.getpid(),
        steps=payload["steps"],
        round=payload.get("round", 0),
    ) as sp:
        with tracer.span(
            "cluster.compute",
            category="parallel",
            rank=payload["rank"],
            round=payload.get("round", 0),
        ):
            out = advance_window(
                apply_fn,
                payload["window"],
                payload["origin"],
                payload["global_shape"],
                payload["boundary"],
                payload["steps"],
                payload["h"],
            )
        if counters is not None:
            sp.add_events(counters)
    return {
        "out": out,
        "counters": counters.as_dict() if counters is not None else None,
        "spans": [span_to_dict(r) for r in tracer.roots()],
        "t0_ns": t0_ns,
        "pid": os.getpid(),
        "plan_key": compiled.key,
    }


def process_advance(
    pool,
    rank: int,
    window: np.ndarray,
    sub,
    plan,
    steps: int,
    context,
    simulate: bool = False,
    backend: str | None = None,
    round_i: int = 0,
) -> tuple[np.ndarray, "object | None", dict]:
    """Dispatch one rank's round to the process pool and join it.

    Blocks until the child finishes; revives the child's spans under
    ``context`` (rebased onto the dispatch instant, so the lane renders
    where the parent handed the work off) and returns
    ``(block, counters | None, info)`` where ``info`` carries the
    worker ``pid`` and the child's ``plan_key`` (asserted equal to the
    parent's by the cluster tests — both sides compile the same plan).
    """
    from repro.tcu.counters import EventCounters
    from repro.telemetry.context import revive_spans

    depth = steps * plan.radius
    payload = {
        "weights": plan.compiled.plan.weights,
        "ndim": plan.ndim,
        "backend": backend if backend is not None else plan.backend,
        "simulate": simulate,
        "window": np.ascontiguousarray(window),
        "origin": tuple(s.start - depth for s in sub.slices),
        "global_shape": plan.global_shape,
        "boundary": plan.schedule.boundary,
        "steps": steps,
        "h": plan.radius,
        "rank": rank,
        "round": round_i,
        "traced": context.is_recording,
    }
    dispatch_ns = time.perf_counter_ns()
    result = pool.submit(_process_worker, payload).result()
    if result["spans"]:
        revive_spans(
            result["spans"],
            context,
            rebase_ns=dispatch_ns - result["t0_ns"],
        )
    counters = (
        EventCounters(**result["counters"])
        if result["counters"] is not None
        else None
    )
    info = {"pid": result["pid"], "plan_key": result["plan_key"]}
    return result["out"], counters, info
