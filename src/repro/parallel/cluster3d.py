"""3D pencil-decomposed cluster.

Production 3D stencil codes (RTM, weather dynamics) typically partition
the two horizontal axes across devices and keep the vertical axis local
— the *pencil* decomposition.  :class:`SimulatedCluster3D` applies that
scheme over the 2D :func:`~repro.parallel.decomposition.partition`:
each device owns a ``Z x rows x cols`` pencil, exchanges 2D-mesh halos
(scaled by the pencil depth), and runs the plane-decomposed
:class:`~repro.core.engine3d.LoRAStencil3D` locally.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import compile as compile_stencil
from repro.parallel.decomposition import Partition, partition
from repro.parallel.halo import HaloExchanger
from repro.stencil.weights import StencilWeights

__all__ = ["SimulatedCluster3D"]

_FP64 = 8


class SimulatedCluster3D:
    """A 2D device mesh of 3D pencils timestepping one global stencil."""

    def __init__(
        self,
        weights: StencilWeights,
        global_shape: tuple[int, int, int],
        mesh: tuple[int, int],
        boundary: str = "constant",
    ) -> None:
        if weights.ndim != 3:
            raise ValueError(
                f"SimulatedCluster3D needs a 3D stencil, got {weights.ndim}D"
            )
        if boundary not in ("constant", "periodic"):
            raise ValueError(
                f"boundary must be 'constant' or 'periodic', got {boundary!r}"
            )
        self.weights = weights
        self.boundary = boundary
        self.global_shape = global_shape
        self.part: Partition = partition(global_shape[1:], mesh)
        # reuse the 2D halo accounting; every exchanged cross-section cell
        # carries the full pencil depth plus the z halo
        self._halo2d = HaloExchanger(self.part, weights.radius, boundary)
        self.exchanged_bytes = 0
        # one cached plan serves every rank (engines are read-only)
        compiled = compile_stencil(weights)
        self.engines = {
            sub.rank: compiled.engine for sub in self.part.subdomains
        }

    # ------------------------------------------------------------------
    def bytes_per_exchange(self, rank: int) -> int:
        """Interconnect bytes one device receives per halo exchange."""
        depth = self.global_shape[0] + 2 * self.weights.radius
        return self._halo2d.bytes_per_exchange(rank) * depth

    def scatter(self, field: np.ndarray) -> dict[int, np.ndarray]:
        """Distribute a global 3D field into per-device pencils."""
        field = np.asarray(field, dtype=np.float64)
        if field.shape != self.global_shape:
            raise ValueError(
                f"field shape {field.shape} != {self.global_shape}"
            )
        return {
            s.rank: field[:, s.row_slice, s.col_slice].copy()
            for s in self.part.subdomains
        }

    def gather(self, blocks: dict[int, np.ndarray]) -> np.ndarray:
        """Reassemble the global field from pencils."""
        out = np.empty(self.global_shape, dtype=np.float64)
        for s in self.part.subdomains:
            out[:, s.row_slice, s.col_slice] = blocks[s.rank]
        return out

    # ------------------------------------------------------------------
    def _exchange(self, blocks: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Pad every pencil from its mesh neighbours (and the z boundary)."""
        h = self.weights.radius
        global_arr = self.gather(blocks)
        mode = "wrap" if self.boundary == "periodic" else "constant"
        padded = np.pad(global_arr, h, mode=mode)
        windows = {}
        for s in self.part.subdomains:
            windows[s.rank] = padded[
                :,
                s.row_slice.start : s.row_slice.stop + 2 * h,
                s.col_slice.start : s.col_slice.stop + 2 * h,
            ].copy()
            self.exchanged_bytes += self.bytes_per_exchange(s.rank)
        return windows

    def run(self, field: np.ndarray, steps: int) -> np.ndarray:
        """Timestep the global 3D problem; returns the final field."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        blocks = self.scatter(field)
        for _ in range(steps):
            windows = self._exchange(blocks)
            blocks = {
                rank: self.engines[rank].apply(window)
                for rank, window in windows.items()
            }
        return self.gather(blocks)
