"""3D pencil-decomposed cluster.

Production 3D stencil codes (RTM, weather dynamics) typically partition
the two horizontal axes across devices and keep the vertical axis local
— the *pencil* decomposition.  :class:`SimulatedCluster3D` expresses
that scheme as a ``(1, P, Q)`` mesh over the N-D
:func:`~repro.parallel.decomposition.partition` and executes through
the :class:`~repro.parallel.cluster.ClusterRuntime`, so 3D clusters
inherit ``backend=``, temporal blocking, overlapped exchange, fault
tolerance and telemetry like their 2D counterparts.

Byte accounting keeps the original pencil model: every exchanged 2D
cross-section cell carries the full pencil depth plus the z halo
(``bytes_2d * (Z + 2h)``) — the quantity a point-to-point pencil
implementation transfers, accumulated on :attr:`exchanged_bytes`.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.cluster import ClusterRuntime
from repro.parallel.decomposition import Partition, partition
from repro.parallel.halo import HaloExchanger
from repro.parallel.plan import distribute
from repro.stencil.weights import StencilWeights

__all__ = ["SimulatedCluster3D"]


class SimulatedCluster3D:
    """A 2D device mesh of 3D pencils timestepping one global stencil."""

    def __init__(
        self,
        weights: StencilWeights,
        global_shape: tuple[int, int, int],
        mesh: tuple[int, int],
        boundary: str = "constant",
    ) -> None:
        if weights.ndim != 3:
            raise ValueError(
                f"SimulatedCluster3D needs a 3D stencil, got {weights.ndim}D"
            )
        if boundary not in ("constant", "periodic"):
            raise ValueError(
                f"boundary must be 'constant' or 'periodic', got {boundary!r}"
            )
        self.weights = weights
        self.boundary = boundary
        self.global_shape = tuple(global_shape)
        # pencils: the vertical axis stays whole on every device
        self.plan = distribute(
            weights, global_shape, (1, *mesh), boundary=boundary
        )
        self.runtime = ClusterRuntime(self.plan)
        # the legacy 2D cross-section view the pencil byte model charges
        self.part: Partition = partition(self.global_shape[1:], mesh)
        self._halo2d = HaloExchanger(self.part, weights.radius, boundary)
        self.exchanged_bytes = 0
        self.engines = {
            sub.rank: self.plan.compiled.engine
            for sub in self.part.subdomains
        }

    # ------------------------------------------------------------------
    def bytes_per_exchange(self, rank: int) -> int:
        """Interconnect bytes one device receives per halo exchange."""
        depth = self.global_shape[0] + 2 * self.weights.radius
        return self._halo2d.bytes_per_exchange(rank) * depth

    def scatter(self, field: np.ndarray) -> dict[int, np.ndarray]:
        """Distribute a global 3D field into per-device pencils."""
        return self.runtime.scatter(field)

    def gather(self, blocks: dict[int, np.ndarray]) -> np.ndarray:
        """Reassemble the global field from pencils."""
        return self.runtime.gather(blocks)

    # ------------------------------------------------------------------
    def run(self, field: np.ndarray, steps: int, **kwargs) -> np.ndarray:
        """Timestep the global 3D problem; returns the final field.

        ``**kwargs`` pass through to :meth:`ClusterRuntime.run`
        (``block_steps=``, ``overlap=``, ``executor=``, ``simulate=``,
        fault-tolerance arguments, ...).
        """
        result = self.runtime.run(field, steps, **kwargs)
        self.exchanged_bytes += result.rounds * sum(
            self.bytes_per_exchange(s.rank) for s in self.part.subdomains
        )
        return result.field
