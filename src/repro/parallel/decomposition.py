"""Block partitioning of an N-D grid onto a device mesh.

Originally 2D-only; the distributed runtime (``repro.parallel.plan``)
partitions 1D, 2D and 3D grids with the same balanced block
distribution, so :class:`Subdomain` carries one slice per axis.  The
2D accessors (``row_slice``/``col_slice``) survive as properties — every
pre-existing consumer reads them, none constructs subdomains directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Subdomain", "Partition", "partition"]


@dataclass(frozen=True)
class Subdomain:
    """One device's block of the global grid."""

    rank: int
    mesh_pos: tuple[int, ...]  # position in the device mesh, one per axis
    slices: tuple[slice, ...]  # owned index range per axis

    @property
    def ndim(self) -> int:
        return len(self.slices)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(s.stop - s.start for s in self.slices)

    @property
    def row_slice(self) -> slice:
        """First-axis slice (2D convention kept for existing callers)."""
        return self.slices[0]

    @property
    def col_slice(self) -> slice:
        """Second-axis slice (2D convention kept for existing callers)."""
        return self.slices[1]

    def window_slices(self, depth: int) -> tuple[slice, ...]:
        """Slices of this block extended by ``depth`` into a *padded*
        global array (padded by ``depth`` per side, so the window starts
        at the unpadded ``start`` coordinate)."""
        return tuple(slice(s.start, s.stop + 2 * depth) for s in self.slices)


@dataclass(frozen=True)
class Partition:
    """A full block partition of an N-D grid on a device mesh."""

    global_shape: tuple[int, ...]
    mesh: tuple[int, ...]
    subdomains: tuple[Subdomain, ...]

    @property
    def ndim(self) -> int:
        return len(self.global_shape)

    @property
    def num_devices(self) -> int:
        n = 1
        for m in self.mesh:
            n *= m
        return n

    def at(self, *pos: int) -> Subdomain:
        """Subdomain at mesh position ``pos`` (one index per mesh axis)."""
        if len(pos) != len(self.mesh):
            raise ValueError(
                f"mesh position {pos} has {len(pos)} axes, mesh is {self.mesh}"
            )
        rank = 0
        for p, m in zip(pos, self.mesh):
            rank = rank * m + p
        return self.subdomains[rank]

    def neighbor(
        self, sub: Subdomain, *deltas: int, periodic: bool
    ) -> Subdomain | None:
        """Mesh neighbor in direction ``deltas`` (None past a
        non-periodic global edge)."""
        if len(deltas) != len(self.mesh):
            raise ValueError(
                f"direction {deltas} has {len(deltas)} axes, mesh is {self.mesh}"
            )
        pos = []
        for p, d, m in zip(sub.mesh_pos, deltas, self.mesh):
            q = p + d
            if periodic:
                q %= m
            elif not 0 <= q < m:
                return None
            pos.append(q)
        return self.at(*pos)


def _split(n: int, parts: int) -> list[slice]:
    """Split ``n`` items into ``parts`` contiguous nearly-equal slices."""
    base, extra = divmod(n, parts)
    slices = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def partition(
    global_shape: tuple[int, ...], mesh: tuple[int, ...]
) -> Partition:
    """Block-partition ``global_shape`` onto a device ``mesh``.

    ``mesh`` has one entry per grid axis (a 1D mesh for 1D grids, the
    classic ``(P, Q)`` for 2D, ``(Z, P, Q)`` for 3D — use ``Z = 1`` for
    the pencil decomposition).  Every subdomain must be non-empty;
    uneven shapes distribute the remainder over the leading ranks (the
    standard block distribution).
    """
    global_shape = tuple(int(n) for n in global_shape)
    mesh = tuple(int(m) for m in mesh)
    if len(global_shape) != len(mesh):
        raise ValueError(
            f"grid {global_shape} and mesh {mesh} must have the same "
            "number of axes"
        )
    if not 1 <= len(mesh) <= 3:
        raise ValueError(f"partition supports 1-3 axes, got {len(mesh)}")
    if any(m < 1 for m in mesh):
        raise ValueError(f"mesh must be positive, got {mesh}")
    if any(n < m for n, m in zip(global_shape, mesh)):
        raise ValueError(
            f"grid {global_shape} too small for a {mesh} device mesh"
        )
    axis_slices = [_split(n, m) for n, m in zip(global_shape, mesh)]
    positions: list[tuple[int, ...]] = [()]
    for m in mesh:
        positions = [pos + (p,) for pos in positions for p in range(m)]
    subs = tuple(
        Subdomain(
            rank=rank,
            mesh_pos=pos,
            slices=tuple(axis_slices[ax][p] for ax, p in enumerate(pos)),
        )
        for rank, pos in enumerate(positions)
    )
    return Partition(global_shape=global_shape, mesh=mesh, subdomains=subs)
