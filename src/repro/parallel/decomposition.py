"""Block partitioning of a 2D grid onto a device mesh."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Subdomain", "Partition", "partition"]


@dataclass(frozen=True)
class Subdomain:
    """One device's block of the global grid."""

    rank: int
    mesh_pos: tuple[int, int]  # (p, q) position in the device mesh
    row_slice: slice
    col_slice: slice

    @property
    def shape(self) -> tuple[int, int]:
        return (
            self.row_slice.stop - self.row_slice.start,
            self.col_slice.stop - self.col_slice.start,
        )


@dataclass(frozen=True)
class Partition:
    """A full block partition of a ``rows x cols`` grid on a P x Q mesh."""

    global_shape: tuple[int, int]
    mesh: tuple[int, int]
    subdomains: tuple[Subdomain, ...]

    @property
    def num_devices(self) -> int:
        return self.mesh[0] * self.mesh[1]

    def at(self, p: int, q: int) -> Subdomain:
        """Subdomain at mesh position ``(p, q)``."""
        return self.subdomains[p * self.mesh[1] + q]

    def neighbor(self, sub: Subdomain, dp: int, dq: int, periodic: bool) -> Subdomain | None:
        """Mesh neighbor in direction ``(dp, dq)`` (None past a
        non-periodic global edge)."""
        p, q = sub.mesh_pos
        np_, nq = p + dp, q + dq
        if periodic:
            np_ %= self.mesh[0]
            nq %= self.mesh[1]
        elif not (0 <= np_ < self.mesh[0] and 0 <= nq < self.mesh[1]):
            return None
        return self.at(np_, nq)


def _split(n: int, parts: int) -> list[slice]:
    """Split ``n`` items into ``parts`` contiguous nearly-equal slices."""
    base, extra = divmod(n, parts)
    slices = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def partition(global_shape: tuple[int, int], mesh: tuple[int, int]) -> Partition:
    """Block-partition ``global_shape`` onto a ``mesh = (P, Q)`` of devices.

    Every subdomain must be non-empty; uneven shapes distribute the
    remainder over the leading ranks (the standard block distribution).
    """
    rows, cols = global_shape
    p_mesh, q_mesh = mesh
    if p_mesh < 1 or q_mesh < 1:
        raise ValueError(f"mesh must be positive, got {mesh}")
    if rows < p_mesh or cols < q_mesh:
        raise ValueError(
            f"grid {global_shape} too small for a {mesh} device mesh"
        )
    row_slices = _split(rows, p_mesh)
    col_slices = _split(cols, q_mesh)
    subs = []
    rank = 0
    for p in range(p_mesh):
        for q in range(q_mesh):
            subs.append(
                Subdomain(
                    rank=rank,
                    mesh_pos=(p, q),
                    row_slice=row_slices[p],
                    col_slice=col_slices[q],
                )
            )
            rank += 1
    return Partition(global_shape=global_shape, mesh=mesh, subdomains=tuple(subs))
