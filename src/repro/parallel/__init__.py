"""Multi-GPU domain decomposition (scale-out substrate).

The paper evaluates a single A100; production stencil codes
(atmospheric models, RTM seismic imaging — the paper's motivating
applications) decompose the grid across many GPUs with halo exchange.
This package provides that substrate over the same simulator:

* :func:`repro.parallel.decomposition.partition` — block-partition a
  grid onto a ``P x Q`` device mesh;
* :class:`repro.parallel.halo.HaloExchanger` — per-step halo exchange
  with byte accounting (the interconnect's event counter);
* :class:`repro.parallel.cluster.SimulatedCluster` — drives one
  LoRAStencil engine per device, timesteps the global problem, and
  models strong/weak scaling with an NVLink-like interconnect.

Everything is deterministic and validated against the single-grid
reference trajectory in the test suite.
"""

from repro.parallel.decomposition import Partition, Subdomain, partition
from repro.parallel.halo import HaloExchanger
from repro.parallel.cluster import ClusterTimings, SimulatedCluster
from repro.parallel.cluster3d import SimulatedCluster3D
from repro.parallel.temporal import run_temporal_blocked, temporal_halo_bytes

__all__ = [
    "Partition",
    "Subdomain",
    "partition",
    "HaloExchanger",
    "SimulatedCluster",
    "SimulatedCluster3D",
    "ClusterTimings",
    "run_temporal_blocked",
    "temporal_halo_bytes",
]
