"""Multi-GPU domain decomposition (scale-out substrate).

The paper evaluates a single A100; production stencil codes
(atmospheric models, RTM seismic imaging — the paper's motivating
applications) decompose the grid across many GPUs with halo exchange.
This package provides that substrate *through the runtime*: a
distributed run is compiled by the same pipeline, cached in the same
plan cache, and observed by the same telemetry as a single-device
sweep.

* :func:`repro.parallel.decomposition.partition` — block-partition a
  1D/2D/3D grid onto a device mesh;
* :func:`repro.parallel.plan.distribute` — the distribution pass:
  partition + :class:`~repro.parallel.plan.HaloSchedule` + per-rank
  compilation through ``repro.compile``, yielding a
  :class:`~repro.parallel.plan.DistributedPlan`;
* :class:`repro.parallel.halo.HaloExchanger` — halo exchange
  (synchronous or ``cp.async``-modeled double-buffered) with byte
  accounting on the ``repro_halo_bytes_total`` counter;
* :class:`repro.parallel.cluster.ClusterRuntime` — executes a
  distributed plan: per-step / temporal rounds, overlapped transfers,
  serial/thread/process executors, fault tolerance, scaling model;
* :func:`repro.parallel.temporal.run_temporal_blocked` — trapezoid and
  diamond temporal tiling (communication avoidance).

Everything is deterministic and validated bit-for-bit against the
single-grid reference trajectory in the test suite.
"""

from repro.parallel.decomposition import Partition, Subdomain, partition
from repro.parallel.halo import (
    HALO_BYTES_METRIC,
    AsyncHaloHandle,
    HaloExchanger,
)
from repro.parallel.plan import (
    TILINGS,
    DistributedPlan,
    HaloSchedule,
    distribute,
)
from repro.parallel.distributed import (
    advance_window,
    frame_regions,
    interior_of,
    strip_window,
)
from repro.parallel.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointConfig,
    CheckpointError,
    CheckpointHalt,
    ClusterCheckpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.parallel.cluster import (
    EXECUTORS,
    ClusterResult,
    ClusterRuntime,
    ClusterTimings,
    SimulatedCluster,
)
from repro.parallel.cluster3d import SimulatedCluster3D
from repro.parallel.temporal import run_temporal_blocked, temporal_halo_bytes

__all__ = [
    "Partition",
    "Subdomain",
    "partition",
    "HaloExchanger",
    "AsyncHaloHandle",
    "HALO_BYTES_METRIC",
    "DistributedPlan",
    "HaloSchedule",
    "TILINGS",
    "distribute",
    "advance_window",
    "frame_regions",
    "interior_of",
    "strip_window",
    "ClusterRuntime",
    "ClusterResult",
    "ClusterTimings",
    "EXECUTORS",
    "CHECKPOINT_SCHEMA",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointHalt",
    "ClusterCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
    "SimulatedCluster",
    "SimulatedCluster3D",
    "run_temporal_blocked",
    "temporal_halo_bytes",
]
