"""Simulated multi-GPU cluster running LoRAStencil per device.

:class:`SimulatedCluster` timesteps a global 2D problem across a device
mesh: each step is one halo exchange followed by one LoRAStencil sweep
per device (executed sequentially in Python; semantically parallel).
It produces

* the exact global trajectory (validated against the single-grid
  reference in the tests), and
* a scaling-time model: per step, the slowest device's modelled sweep
  time plus the interconnect time of its halo traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import FootprintScale
from repro.runtime import compile as compile_stencil
from repro.parallel.decomposition import Partition, partition
from repro.parallel.halo import HaloExchanger
from repro.perf.costmodel import time_per_point
from repro.perf.machine import A100, MachineSpec
from repro.stencil.weights import StencilWeights

__all__ = ["SimulatedCluster", "ClusterTimings", "NVLINK_BANDWIDTH"]

#: per-direction NVLink3 bandwidth of an A100 system, B/s
NVLINK_BANDWIDTH = 600e9


@dataclass(frozen=True)
class ClusterTimings:
    """Modelled per-step timing of one cluster configuration."""

    num_devices: int
    compute_s: float  # slowest device's sweep
    comm_s: float  # largest halo transfer
    steps: int

    @property
    def step_s(self) -> float:
        return self.compute_s + self.comm_s

    @property
    def total_s(self) -> float:
        return self.step_s * self.steps

    def speedup_over(self, other: "ClusterTimings") -> float:
        """How much faster this configuration is than ``other``."""
        return other.total_s / self.total_s

    @property
    def comm_fraction(self) -> float:
        return self.comm_s / self.step_s if self.step_s else 0.0


class SimulatedCluster:
    """A mesh of simulated devices timestepping one global stencil."""

    def __init__(
        self,
        weights: StencilWeights,
        global_shape: tuple[int, int],
        mesh: tuple[int, int],
        boundary: str = "constant",
        machine: MachineSpec = A100,
    ) -> None:
        if weights.ndim != 2:
            raise ValueError(
                f"SimulatedCluster supports 2D stencils, got {weights.ndim}D"
            )
        self.weights = weights
        self.machine = machine
        self.part: Partition = partition(global_shape, mesh)
        self.halo = HaloExchanger(self.part, weights.radius, boundary)
        # one cached plan serves every rank: the engines are read-only
        # after compilation, so the mesh shares a single instance
        compiled = compile_stencil(weights)
        self.engines = {
            sub.rank: compiled.engine for sub in self.part.subdomains
        }

    # ------------------------------------------------------------------
    # functional execution
    # ------------------------------------------------------------------
    def scatter(self, global_field: np.ndarray) -> dict[int, np.ndarray]:
        """Distribute a global field onto the device mesh."""
        global_field = np.asarray(global_field, dtype=np.float64)
        if global_field.shape != self.part.global_shape:
            raise ValueError(
                f"field shape {global_field.shape} != partition "
                f"{self.part.global_shape}"
            )
        return {
            sub.rank: global_field[sub.row_slice, sub.col_slice].copy()
            for sub in self.part.subdomains
        }

    def gather(self, blocks: dict[int, np.ndarray]) -> np.ndarray:
        """Reassemble the global field."""
        out = np.empty(self.part.global_shape, dtype=np.float64)
        for sub in self.part.subdomains:
            out[sub.row_slice, sub.col_slice] = blocks[sub.rank]
        return out

    def run(self, global_field: np.ndarray, steps: int) -> np.ndarray:
        """Timestep the global problem; returns the final global field."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        blocks = self.scatter(global_field)
        for _ in range(steps):
            windows = self.halo.exchange(blocks)
            blocks = {
                rank: self.engines[rank].apply(window)
                for rank, window in windows.items()
            }
        return self.gather(blocks)

    # ------------------------------------------------------------------
    # scaling model
    # ------------------------------------------------------------------
    def timings(self, steps: int = 1) -> ClusterTimings:
        """Modelled per-step time: slowest sweep + largest halo transfer.

        The sweep time reuses the single-GPU cost model on a
        representative measured footprint scaled to the largest block.
        """
        from repro.baselines.lorastencil import LoRAStencilMethod
        from repro.stencil.kernels import BenchmarkKernel

        biggest = max(self.part.subdomains, key=lambda s: s.shape[0] * s.shape[1])
        kernel = BenchmarkKernel(
            name="cluster-kernel",
            weights=self.weights,
            problem_size=biggest.shape,
            iterations=steps,
            blocking=(32, 64),
        )
        method = LoRAStencilMethod(kernel)
        measure = tuple(min(s, 64) for s in biggest.shape)
        fp: FootprintScale = method.footprint(measure)
        per_point = time_per_point(fp, method.traits(), self.machine)
        compute = per_point * biggest.shape[0] * biggest.shape[1]
        comm_bytes = max(
            self.halo.bytes_per_exchange(s.rank) for s in self.part.subdomains
        )
        comm = comm_bytes / NVLINK_BANDWIDTH
        return ClusterTimings(
            num_devices=self.part.num_devices,
            compute_s=compute,
            comm_s=comm,
            steps=steps,
        )
