"""The cluster runtime: executing a :class:`DistributedPlan`.

:class:`ClusterRuntime` timesteps a global 1D/2D/3D problem across a
device mesh by driving the *runtime* — every rank executes the plan's
compiled :class:`~repro.runtime.facade.CompiledStencil`, so distributed
runs honor ``backend=``, the plan cache, fault injection/ABFT, and the
trace/event/health telemetry planes exactly like single-device sweeps.
One phase-driven loop serves every mode:

* per-step exchange (``block_steps=1``, the classic halo pipeline),
* temporal blocking (trapezoid/diamond rounds from the plan's
  :class:`~repro.parallel.plan.HaloSchedule`),
* overlapped execution (``overlap=True``): the halo transfer is issued
  asynchronously (``cp.async`` model) and each rank computes its
  halo-independent interior *while the transfer is in flight*, then
  finishes the boundary strips after arrival — bit-identical to the
  synchronous exchange by the overlap-equivalence suite,
* serial / thread / process executors; process ranks run in worker
  processes under the PR 5 recovery ladder with their spans revived
  into the parent trace.

It produces the exact global trajectory (validated against the
single-grid reference) plus a scaling-time model
(:class:`ClusterTimings`) with an NVLink-like interconnect.
:class:`SimulatedCluster` remains as the thin 2D convenience wrapper
the earlier tests and benchmarks use.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro import telemetry
from repro.errors import ExecutionError, FaultError, ReproError
from repro.parallel.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    CheckpointHalt,
    ClusterCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.parallel.decomposition import Partition
from repro.parallel.distributed import (
    advance_window,
    frame_regions,
    interior_of,
    process_advance,
    strip_window,
)
from repro.parallel.halo import HaloExchanger, halo_bytes_counter
from repro.parallel.plan import DistributedPlan, distribute
from repro.perf.costmodel import time_per_point
from repro.perf.machine import A100, MachineSpec
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.telemetry.context import TraceContext
from repro.telemetry.health import HEALTH
from repro.telemetry.log import emit as emit_event
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.spans import TRACER

__all__ = [
    "ClusterRuntime",
    "ClusterResult",
    "SimulatedCluster",
    "ClusterTimings",
    "NVLINK_BANDWIDTH",
    "NVLINK_LATENCY",
    "EXECUTORS",
]

#: per-direction NVLink3 bandwidth of an A100 system, B/s
NVLINK_BANDWIDTH = 600e9

#: per-message NVLink hop latency, s — the fixed cost every exchange
#: round pays once, which temporal blocking amortizes over block_steps
NVLINK_LATENCY = 1e-7

#: rank execution strategies ``ClusterRuntime.run`` understands
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ClusterTimings:
    """Modelled per-step timing of one cluster configuration.

    The original fields model the synchronous pipeline (``step_s =
    compute_s + comm_s``); the defaulted extensions model the
    overlapped one, where the interior sweep hides the transfer:
    ``step_s = max(comm_s, interior_s) + boundary_s``.  ``comm_s`` is
    always the *per-step equivalent* interconnect time (a temporal
    round's deep exchange amortized over its ``block_steps``).
    """

    num_devices: int
    compute_s: float  # slowest device's sweep
    comm_s: float  # largest halo transfer, per-step equivalent
    steps: int
    overlap: bool = False
    interior_s: float = 0.0  # halo-independent part of compute_s
    boundary_s: float = 0.0  # strips that must wait for arrival
    points: int = 0  # global grid points updated per step
    block_steps: int = 1

    @property
    def step_s(self) -> float:
        if self.overlap:
            return max(self.comm_s, self.interior_s) + self.boundary_s
        return self.compute_s + self.comm_s

    @property
    def total_s(self) -> float:
        return self.step_s * self.steps

    def speedup_over(self, other: "ClusterTimings") -> float:
        """How much faster this configuration is than ``other``."""
        return other.total_s / self.total_s

    @property
    def comm_fraction(self) -> float:
        return self.comm_s / self.step_s if self.step_s else 0.0

    @property
    def gstencil_per_s(self) -> float:
        """Modelled throughput in giga stencil-point updates per second."""
        return self.points / self.step_s / 1e9 if self.step_s else 0.0


@dataclass
class ClusterResult:
    """Everything one :meth:`ClusterRuntime.run` produced."""

    field: np.ndarray
    steps: int
    phases: tuple[int, ...]
    exchanged_bytes: int
    counters: EventCounters | None = None
    fault_report: object | None = None
    backend: str | None = None
    executor: str = "serial"
    overlap: bool = False
    worker_pids: tuple[int, ...] = ()
    rank_plan_keys: tuple[str, ...] = ()
    #: per-round exchange ledger: one dict per halo exchange with
    #: ``round`` / ``steps`` / ``depth`` / ``halo_bytes`` (this round's
    #: bit-exact contribution to :attr:`exchanged_bytes`) and
    #: ``comm_bytes_max`` (the largest single-rank receive, the volume
    #: the :class:`ClusterTimings` interconnect model charges)
    round_log: tuple[dict, ...] = ()
    #: growth of the process-wide ``repro_halo_bytes_total`` counter
    #: across this run — reconciles bit-exactly with
    #: :attr:`exchanged_bytes` (one accounting source)
    halo_counter_delta: int = 0
    #: the plan this run executed (the report needs its partition and
    #: timing model); ``None`` only for hand-built results
    plan: DistributedPlan | None = None
    #: trace id of the run's ``cluster.run`` span (None when telemetry
    #: was off) — :meth:`report` finds the span forest by it
    trace_id: str | None = None
    #: halo bytes inherited from the checkpoint a resumed run restarted
    #: from — the three-ledger reconciliation adds these to the fresh
    #: counter growth (:attr:`exchanged_bytes` spans the *whole* run,
    #: :attr:`halo_counter_delta` only the resumed part)
    resumed_halo_bytes: int = 0
    #: resilience ledger (checkpoints saved/restored, halo detections
    #: and retransmits, elastic re-plans) — ``None`` when the run used
    #: none of the resilience machinery
    resilience: dict | None = None

    @property
    def rounds(self) -> int:
        """Halo exchanges performed (messages per rank)."""
        return len(self.phases)

    def report(self, tracer=None):
        """Post-process this run into a cluster observatory report.

        Delegates to :func:`repro.telemetry.cluster.build_cluster_report`
        against the merged trace (the run must have executed under
        ``telemetry.capture()`` / an enabled tracer).  Raises
        :class:`~repro.telemetry.validate.TelemetryError` when no
        ``cluster.run`` span of this run is in the tracer's buffer.
        """
        from repro.telemetry.cluster import build_cluster_report

        return build_cluster_report(self, tracer=tracer)


class ClusterRuntime:
    """A mesh of simulated devices executing one distributed plan."""

    def __init__(
        self, plan: DistributedPlan, machine: MachineSpec = A100
    ) -> None:
        self.plan = plan
        self.machine = machine
        self.part: Partition = plan.part
        # one exchanger per halo depth, shared across runs so the byte
        # ledger (and the repro_halo_bytes_total counter behind it)
        # accumulates in exactly one place
        self._exchangers: dict[int, HaloExchanger] = {}
        self.last_result: ClusterResult | None = None
        self.last_fault_report = None
        #: free-form run description stored in checkpoint manifests so
        #: ``repro cluster resume`` can rebuild the plan (the CLI fills
        #: this in; library callers may leave it empty)
        self.checkpoint_meta: dict = {}

    # ------------------------------------------------------------------
    def exchanger(self, depth: int) -> HaloExchanger:
        """The shared halo exchanger for one halo depth."""
        ex = self._exchangers.get(depth)
        if ex is None:
            ex = self.plan.exchanger(depth)
            self._exchangers[depth] = ex
        return ex

    @property
    def halo(self) -> HaloExchanger:
        """The per-step (radius-deep) halo exchanger."""
        return self.exchanger(self.plan.radius)

    def scatter(self, global_field: np.ndarray) -> dict[int, np.ndarray]:
        """Distribute a global field onto the device mesh."""
        global_field = np.asarray(global_field, dtype=np.float64)
        if global_field.shape != self.part.global_shape:
            raise ValueError(
                f"field shape {global_field.shape} != partition "
                f"{self.part.global_shape}"
            )
        return {
            sub.rank: global_field[sub.slices].copy()
            for sub in self.part.subdomains
        }

    def gather(self, blocks: dict[int, np.ndarray]) -> np.ndarray:
        """Reassemble the global field."""
        out = np.empty(self.part.global_shape, dtype=np.float64)
        for sub in self.part.subdomains:
            out[sub.slices] = blocks[sub.rank]
        return out

    # ------------------------------------------------------------------
    def run(
        self,
        global_field: np.ndarray,
        steps: int,
        *,
        block_steps: int | None = None,
        tiling: str | None = None,
        overlap: bool = False,
        executor: str = "serial",
        simulate: bool = False,
        backend: str | None = None,
        verify: str | None = None,
        faults=None,
        policy=None,
        max_workers: int | None = None,
        checkpoint: CheckpointConfig | None = None,
        resume_from: ClusterCheckpoint | str | None = None,
        elastic: bool = False,
    ) -> ClusterResult:
        """Timestep the global problem; returns a :class:`ClusterResult`.

        ``block_steps`` / ``tiling`` override the plan's halo schedule
        for this run (temporal blocking); ``overlap=True`` issues each
        exchange asynchronously and computes interiors while it is in
        flight; ``executor`` picks how ranks run within a round
        (``"serial"`` / ``"thread"`` / ``"process"``).  ``simulate=True``
        runs the faithful TCU sweep per rank (merged
        :class:`~repro.tcu.counters.EventCounters` on the result) under
        ``backend=``; ``verify`` / ``faults`` / ``policy`` arm the PR 5
        fault-tolerance ladder — injected ``shard``/``rank`` faults
        target ranks and recover through the shared supervisor, and
        armed halo faults are caught by strip-checksum verification of
        every exchanged window (with bounded retransmission).

        ``checkpoint`` snapshots the run at temporal-round barriers
        (see :class:`~repro.parallel.checkpoint.CheckpointConfig`);
        ``resume_from`` continues a checkpointed run — ``global_field``
        is ignored then (the blocks come from the snapshot) and the
        completed trajectory is bit-identical to an uninterrupted run.
        ``elastic=True`` lets a rank that exhausts its recovery ladder
        be *dropped*: the surviving ranks re-partition the grid via
        :func:`~repro.parallel.plan.distribute`, replay the failed
        round from its barrier state, and finish the sweep —
        bit-identically, because the per-point update chains are
        partition-independent.  All modes produce bit-identical
        trajectories (the equivalence suite asserts it).
        """
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        plan = self.plan
        schedule = plan.schedule
        if block_steps is not None or tiling is not None:
            schedule = replace(
                schedule,
                block_steps=(
                    schedule.block_steps if block_steps is None else block_steps
                ),
                tiling=schedule.tiling if tiling is None else tiling,
            )
        phases = schedule.phases(steps)  # validates steps >= 0

        h = plan.radius
        gshape = plan.global_shape
        boundary = schedule.boundary
        runtime = plan.compiled.runtime
        subs = {sub.rank: sub for sub in self.part.subdomains}
        ranks = sorted(subs)

        fault_mode = bool(verify) or faults is not None or policy is not None
        injector = None
        report = None
        before = None
        if fault_mode:
            from repro.faults import FaultReport, RecoveryPolicy, as_injector

            injector = as_injector(faults)
            report = injector.report if injector is not None else FaultReport()
            policy = policy or RecoveryPolicy()
            before = report.snapshot()
        self.last_fault_report = report

        resolved = None
        if simulate:
            from repro.runtime.backends import resolve_backend

            resolved = resolve_backend(
                backend, plan_default=plan.backend, fault_mode=fault_mode
            )

        halo_guard = False
        if injector is not None:
            from repro.faults.spec import HALO_KINDS

            halo_guard = bool(injector.plan.by_kind(*HALO_KINDS))

        ckpt_cfg = checkpoint
        if isinstance(resume_from, str):
            resume_from = load_checkpoint(resume_from)
        resumed: ClusterCheckpoint | None = resume_from
        start_round = 0
        exchanged = 0
        resumed_bytes = 0
        round_log: list[dict] = []
        if resumed is not None:
            if resumed.plan_key != plan.key:
                raise CheckpointError(
                    "checkpoint was taken against a different distributed "
                    f"plan (checkpoint {resumed.plan_key[:12]}…, current "
                    f"{plan.key[:12]}…)"
                )
            if (
                list(resumed.phases) != [int(p) for p in phases]
                or resumed.steps != steps
            ):
                raise CheckpointError(
                    "checkpoint phase schedule does not match this run "
                    f"(checkpoint {resumed.phases} over {resumed.steps} "
                    f"steps, current {[int(p) for p in phases]} over "
                    f"{steps})"
                )
            blocks = {
                rank: np.array(block, dtype=np.float64)
                for rank, block in resumed.blocks.items()
            }
            exchanged = int(resumed.exchanged_bytes)
            resumed_bytes = exchanged
            round_log = [dict(entry) for entry in resumed.round_log]
            start_round = resumed.round_index + 1
            if injector is not None and resumed.fault_state:
                injector.load_state(resumed.fault_state)
        else:
            blocks = self.scatter(global_field)

        track_resilience = (
            ckpt_cfg is not None
            or resumed is not None
            or elastic
            or halo_guard
        )
        resilience: dict = {
            "checkpoints": {
                "saved": 0,
                "restored": 1 if resumed is not None else 0,
            },
            "halo": {"detections": 0, "retransmits": 0, "recoveries": 0},
            "replans": [],
            "reassignments": 0,
        }

        total_counters = EventCounters() if simulate else None
        ledger_before = halo_bytes_counter().value
        pids: set[int] = set()
        plan_keys: set[str] = set()
        pool: ProcessPoolExecutor | None = None
        if executor == "process":
            pool = ProcessPoolExecutor(
                max_workers=max_workers or min(len(ranks), os.cpu_count() or 1)
            )

        span_attrs = dict(
            category="parallel",
            plan=plan.key[:16],
            devices=plan.num_devices,
            steps=steps,
            rounds=len(phases),
            tiling=schedule.tiling,
            overlap=overlap,
            executor=executor,
        )
        if resumed is not None:
            span_attrs["resumed_from_round"] = resumed.round_index
        if resumed is not None and resumed.trace_id and TRACER.enabled:
            # continue the interrupted run's trace: pre-seeding the root
            # span's trace id merges the resumed rounds into one tree
            run_cm = TraceContext(resumed.trace_id, None).span(
                "cluster.run", **span_attrs
            )
        else:
            run_cm = telemetry.span("cluster.run", **span_attrs)
        with run_cm as run_span:
            ctx = TraceContext.capture()
            sweep_health = HEALTH.start_sweep(f"cluster-{plan.key[:12]}")
            saved_rounds: set[int] = set()
            last_round_done = start_round - 1

            def _save(round_idx: int):
                ck = save_checkpoint(
                    ckpt_cfg.dir,
                    plan_key=plan.key,
                    round_index=round_idx,
                    phases=[int(p) for p in phases],
                    steps=int(steps),
                    exchanged_bytes=int(exchanged),
                    round_log=[dict(entry) for entry in round_log],
                    blocks=blocks,
                    mesh=tuple(self.part.mesh),
                    global_shape=tuple(gshape),
                    trace_id=run_span.trace_id,
                    fault_state=(
                        injector.state_dict() if injector is not None else None
                    ),
                    meta=dict(self.checkpoint_meta),
                    keep=ckpt_cfg.keep,
                )
                saved_rounds.add(round_idx)
                resilience["checkpoints"]["saved"] += 1
                return ck

            def _guard_halos(windows, ex, round_i, depth) -> None:
                """Verify every exchanged window's frame strips at
                tolerance 0 against the sender-side checksums, with a
                bounded retransmission ladder; an exhausted window
                escalates to a rank failure (``failed_task`` set) so the
                elastic re-plan treats the corrupting link's receiver as
                dead."""
                from repro.faults.abft import halo_frame_checksums

                retransmits = getattr(policy, "max_halo_retransmits", 2)
                # sender-side strip checksums, before any wire fault
                sent = {
                    rank: halo_frame_checksums(windows[rank], depth)
                    for rank in ranks
                }
                injector.on_halo(windows, round_i, depth)
                for rank in ranks:
                    if halo_frame_checksums(windows[rank], depth) == sent[rank]:
                        continue
                    report.bump("halo_detections")
                    resilience["halo"]["detections"] += 1
                    emit_event(
                        "halo.corrupt_detected",
                        level="warning",
                        message=(
                            f"halo window of rank {rank} failed strip-"
                            f"checksum verification in round {round_i}"
                        ),
                        rank=rank,
                        round=round_i,
                        depth=depth,
                    )
                    recovered = False
                    for retry in range(retransmits):
                        report.bump("halo_retransmits")
                        resilience["halo"]["retransmits"] += 1
                        win = ex.retransmit(rank)
                        # sticky wire faults re-corrupt the replacement
                        injector.on_halo_window(win, round_i, rank, depth)
                        windows[rank] = win
                        if halo_frame_checksums(win, depth) == sent[rank]:
                            report.bump("halo_recoveries")
                            resilience["halo"]["recoveries"] += 1
                            emit_event(
                                "halo.recovered",
                                message=(
                                    f"rank {rank} halo verified after "
                                    "retransmission"
                                ),
                                rank=rank,
                                round=round_i,
                                attempt=retry + 1,
                            )
                            recovered = True
                            break
                    if not recovered:
                        report.bump("unrecovered")
                        emit_event(
                            "halo.unrecovered",
                            level="error",
                            message=(
                                f"halo window of rank {rank} exhausted "
                                f"{retransmits} retransmissions"
                            ),
                            rank=rank,
                            round=round_i,
                        )
                        error = FaultError(
                            f"halo window of rank {rank} stayed corrupted "
                            f"after {retransmits} retransmissions"
                        )
                        error.failed_task = rank
                        raise error

            try:
                worklist = list(range(start_round, len(phases)))
                round_marks: dict[int, int] = {}
                while worklist:
                    round_i = worklist[0]
                    k = phases[round_i]
                    # per-round byte mark survives elastic retries, so
                    # aborted attempts' traffic still lands in the round's
                    # ledger entry (one accounting source)
                    round_marks.setdefault(
                        round_i, halo_bytes_counter().value
                    )
                    depth = schedule.depth(k)
                    ex = self.exchanger(depth)
                    # halo verification needs the materialized windows
                    # before any rank computes — it is a synchronization
                    # point, so the guard forces the sync exchange path
                    effective_overlap = overlap and not halo_guard
                    handle = None
                    windows = None
                    if effective_overlap:
                        # cp.async commit: blocks are snapshotted into the
                        # staging buffer before this returns; the transfer
                        # materializes on the exchanger's background lane
                        # while ranks compute their interiors below
                        with telemetry.span(
                            "cluster.exchange",
                            category="parallel",
                            round=round_i,
                            depth=depth,
                            mode="async",
                        ) as ex_span:
                            handle = ex.exchange_async(blocks)
                            ex_span.annotate(bytes=handle.bytes_issued)
                    else:
                        with telemetry.span(
                            "cluster.exchange",
                            category="parallel",
                            round=round_i,
                            depth=depth,
                            mode="sync",
                        ) as ex_span:
                            issued = ex.exchanged_bytes
                            windows = ex.exchange(blocks)
                            ex_span.annotate(
                                bytes=ex.exchanged_bytes - issued
                            )

                    def rank_worker(i: int, rank: int):
                        if injector is not None and executor == "process":
                            # shard faults fire in the dispatcher, where
                            # the supervisor's timeout/retry can see them;
                            # the ctx-attached span keeps the fault.inject
                            # child inside the run's trace instead of an
                            # orphan root on the supervisor thread
                            with ctx.span(
                                "cluster.dispatch",
                                category="parallel",
                                rank=rank,
                                round=round_i,
                            ):
                                injector.on_shard(rank)
                                injector.on_rank(rank)
                        with HEALTH.bind(
                            sweep_health.shard(rank, rows=f"rank {rank}")
                        ):
                            if executor == "process":
                                if handle is not None:
                                    with ctx.span(
                                        "cluster.wait",
                                        category="parallel",
                                        rank=rank,
                                        round=round_i,
                                    ):
                                        win = handle.wait()[rank]
                                else:
                                    win = windows[rank]
                                return process_advance(
                                    pool,
                                    rank,
                                    win,
                                    subs[rank],
                                    plan,
                                    k,
                                    ctx,
                                    simulate=simulate,
                                    backend=resolved,
                                    round_i=round_i,
                                )
                            with ctx.span(
                                "cluster.rank",
                                category="parallel",
                                rank=rank,
                                steps=k,
                                round=round_i,
                            ) as sp:
                                if injector is not None:
                                    injector.on_shard(rank)
                                    injector.on_rank(rank)
                                local = (
                                    EventCounters() if simulate else None
                                )

                                def apply_fn(win, _acc=local):
                                    if _acc is None:
                                        return runtime.apply(win)
                                    out, ev = runtime.apply_simulated(
                                        win,
                                        verify=verify,
                                        faults=injector,
                                        policy=policy,
                                        report=report,
                                        backend=resolved,
                                    )
                                    _acc += ev
                                    return out

                                sub = subs[rank]
                                origin = tuple(
                                    s.start - depth for s in sub.slices
                                )
                                lane = dict(
                                    category="parallel",
                                    rank=rank,
                                    round=round_i,
                                )
                                if handle is None:
                                    with telemetry.span(
                                        "cluster.compute", **lane
                                    ):
                                        out = advance_window(
                                            apply_fn,
                                            windows[rank],
                                            origin,
                                            gshape,
                                            boundary,
                                            k,
                                            h,
                                        )
                                elif local is not None:
                                    # the simulated sweep tiles the whole
                                    # window (the tile decomposition is
                                    # part of the bit/counter contract),
                                    # so overlap models the async
                                    # transfer and sweeps after arrival
                                    with telemetry.span(
                                        "cluster.wait", **lane
                                    ):
                                        win = handle.wait()[rank]
                                    with telemetry.span(
                                        "cluster.compute", **lane
                                    ):
                                        out = advance_window(
                                            apply_fn,
                                            win,
                                            origin,
                                            gshape,
                                            boundary,
                                            k,
                                            h,
                                        )
                                else:
                                    block = blocks[rank]
                                    interior, strips = frame_regions(
                                        block.shape, depth
                                    )
                                    if interior is None:
                                        # block too small to hide any
                                        # compute: wait, then full window
                                        with telemetry.span(
                                            "cluster.wait", **lane
                                        ):
                                            win = handle.wait()[rank]
                                        with telemetry.span(
                                            "cluster.compute", **lane
                                        ):
                                            out = advance_window(
                                                apply_fn,
                                                win,
                                                origin,
                                                gshape,
                                                boundary,
                                                k,
                                                h,
                                            )
                                    else:
                                        with telemetry.span(
                                            "cluster.interior", **lane
                                        ):
                                            core = interior_of(
                                                apply_fn,
                                                block,
                                                sub,
                                                gshape,
                                                boundary,
                                                k,
                                                h,
                                            )
                                        with telemetry.span(
                                            "cluster.wait", **lane
                                        ):
                                            win = handle.wait()[rank]
                                        out = np.empty(
                                            sub.shape, dtype=np.float64
                                        )
                                        out[interior] = core
                                        with telemetry.span(
                                            "cluster.stitch", **lane
                                        ):
                                            for region in strips:
                                                sw = strip_window(
                                                    win, region, depth
                                                )
                                                so = tuple(
                                                    s.start
                                                    + r.start
                                                    - depth
                                                    for s, r in zip(
                                                        sub.slices, region
                                                    )
                                                )
                                                out[region] = (
                                                    advance_window(
                                                        apply_fn,
                                                        sw,
                                                        so,
                                                        gshape,
                                                        boundary,
                                                        k,
                                                        h,
                                                    )
                                                )
                                if local is not None:
                                    sp.add_events(local)
                                return out, local, None

                    try:
                        if halo_guard and depth > 0:
                            _guard_halos(windows, ex, round_i, depth)
                        if fault_mode:
                            from repro.faults.supervisor import (
                                supervise_tasks,
                            )

                            results = supervise_tasks(
                                {r: (r,) for r in ranks},
                                rank_worker,
                                policy,
                                report,
                                max_workers=(
                                    1
                                    if executor == "serial"
                                    else max_workers
                                ),
                                health=sweep_health,
                                describe=lambda args: f"rank {args[0]}",
                            )
                        elif executor == "serial":
                            results = {r: rank_worker(r, r) for r in ranks}
                        else:
                            with ThreadPoolExecutor(
                                max_workers=max_workers
                            ) as tp:
                                futures = {
                                    r: tp.submit(rank_worker, r, r)
                                    for r in ranks
                                }
                                results = {}
                                for r, future in futures.items():
                                    try:
                                        results[r] = future.result()
                                    except ReproError:
                                        raise
                                    except Exception as exc:
                                        raise ExecutionError(
                                            f"cluster rank {r} of "
                                            f"{len(ranks)} failed: {exc}"
                                        ) from exc

                        for r in ranks:
                            out, ev, info = results[r]
                            blocks[r] = out
                            if ev is not None and total_counters is not None:
                                total_counters += ev
                            if info:
                                pids.add(info["pid"])
                                plan_keys.add(info["plan_key"])
                    except FaultError as exc:
                        dead = getattr(exc, "failed_task", None)
                        if not elastic or dead is None or len(ranks) <= 1:
                            raise
                        # elastic re-plan: ``blocks`` still hold the
                        # round-start barrier state (results only fold
                        # after every rank succeeds), so shrinking the
                        # mesh and replaying this round is lossless —
                        # and bit-identical, because the per-point
                        # update chains are partition-independent
                        global_now = self.gather(blocks)
                        old_mesh = tuple(self.part.mesh)
                        new_mesh = (len(ranks) - 1,) + (1,) * (
                            len(gshape) - 1
                        )
                        plan = distribute(
                            plan.source_weights,
                            gshape,
                            new_mesh,
                            boundary=boundary,
                            block_steps=schedule.block_steps,
                            tiling=schedule.tiling,
                            backend=plan.backend,
                        )
                        schedule = plan.schedule
                        self.plan = plan
                        self.part = plan.part
                        self._exchangers = {}
                        runtime = plan.compiled.runtime
                        subs = {
                            sub.rank: sub for sub in self.part.subdomains
                        }
                        ranks = sorted(subs)
                        blocks = self.scatter(global_now)
                        if injector is not None:
                            # survivors are renumbered: the dead rank's
                            # (possibly sticky) faults must not transfer
                            # onto whoever inherits its index
                            injector.disarm_rank(dead)
                        if report is not None:
                            report.bump("rank_reassignments")
                            if report.counts.get("unrecovered", 0) > 0:
                                # the supervisor booked the exhausted
                                # ladder as unrecovered before the
                                # replan ran; the re-partition *is*
                                # the recovery
                                report.bump("unrecovered", -1)
                        REGISTRY.counter(
                            "repro_rank_reassignments_total",
                            help=(
                                "cluster ranks replaced by an elastic "
                                "re-partition"
                            ),
                        ).inc()
                        resilience["reassignments"] += 1
                        resilience["replans"].append(
                            {
                                "round": int(round_i),
                                "dead_rank": int(dead),
                                "old_mesh": [int(m) for m in old_mesh],
                                "new_mesh": [int(m) for m in new_mesh],
                            }
                        )
                        emit_event(
                            "rank.reassigned",
                            level="warning",
                            message=(
                                f"rank {dead} exhausted its recovery "
                                f"ladder; re-partitioned {old_mesh} -> "
                                f"{new_mesh}, replaying round {round_i}"
                            ),
                            dead_rank=int(dead),
                            round=int(round_i),
                            old_mesh=list(old_mesh),
                            new_mesh=list(new_mesh),
                        )
                        continue

                    round_moved = int(
                        halo_bytes_counter().value
                        - round_marks.pop(round_i)
                    )
                    exchanged += round_moved
                    round_log.append(
                        {
                            "round": round_i,
                            "steps": k,
                            "depth": depth,
                            "halo_bytes": round_moved,
                            "comm_bytes_max": max(
                                ex.bytes_per_exchange(s.rank)
                                for s in self.part.subdomains
                            ),
                        }
                    )
                    last_round_done = round_i
                    worklist.pop(0)
                    if ckpt_cfg is not None and (
                        (round_i + 1) % ckpt_cfg.every == 0
                        or ckpt_cfg.halt_after == round_i
                    ):
                        ck = _save(round_i)
                        if ckpt_cfg.halt_after == round_i:
                            raise CheckpointHalt(ck.path, round_i)
            except KeyboardInterrupt:
                # don't leak the pool or lose the run's progress: kill
                # the workers, flush what we know, and leave the last
                # completed barrier behind as a resumable checkpoint
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                    for proc in list(
                        (getattr(pool, "_processes", None) or {}).values()
                    ):
                        try:
                            proc.terminate()
                        except Exception:  # pragma: no cover - defensive
                            pass
                    pool = None
                emit_event(
                    "run.interrupted",
                    level="warning",
                    message=(
                        "cluster run interrupted after "
                        f"{last_round_done + 1} of {len(phases)} rounds"
                    ),
                    rounds_done=last_round_done + 1,
                    rounds_total=len(phases),
                )
                if (
                    ckpt_cfg is not None
                    and last_round_done >= 0
                    and last_round_done not in saved_rounds
                ):
                    _save(last_round_done)
                raise
            finally:
                if pool is not None:
                    pool.shutdown(wait=True)
                HEALTH.publish()
                HEALTH.write_file()

            if total_counters is not None:
                run_span.add_events(total_counters)
                telemetry.absorb_events(total_counters)
            if report is not None:
                run_span.annotate(
                    faults_injected=report.total_injected,
                    faults_detected=report.total_detected,
                    faults_recovered=report.total_recovered,
                )
                telemetry.absorb_faults(report.delta(before))
            run_span.annotate(halo_bytes=exchanged)

        result = ClusterResult(
            field=self.gather(blocks),
            steps=steps,
            phases=phases,
            exchanged_bytes=exchanged,
            counters=total_counters,
            fault_report=report,
            backend=resolved,
            executor=executor,
            overlap=overlap,
            worker_pids=tuple(sorted(pids)),
            rank_plan_keys=tuple(sorted(plan_keys)),
            round_log=tuple(round_log),
            halo_counter_delta=int(
                halo_bytes_counter().value - ledger_before
            ),
            plan=plan,
            trace_id=run_span.trace_id,
            resumed_halo_bytes=resumed_bytes,
            resilience=resilience if track_resilience else None,
        )
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    # scaling model
    # ------------------------------------------------------------------
    def timings(
        self,
        steps: int = 1,
        *,
        overlap: bool = False,
        block_steps: int = 1,
        weights: StencilWeights | None = None,
    ) -> ClusterTimings:
        """Modelled per-step time: slowest sweep + largest halo transfer.

        The sweep time reuses the single-GPU cost model on a
        representative measured footprint scaled to the largest block.
        ``block_steps > 1`` amortizes one deep exchange over the round
        (the per-step-equivalent ``comm_s`` drops ~``block_steps``×);
        ``overlap=True`` splits the sweep into the interior hidden
        behind the transfer and the boundary strips that wait for it.
        """
        from repro.baselines.lorastencil import LoRAStencilMethod
        from repro.stencil.kernels import BenchmarkKernel

        weights = (
            weights if weights is not None else self.plan.source_weights
        )
        if not isinstance(weights, StencilWeights):
            raise ValueError(
                "the timing model needs StencilWeights (the plan was "
                "distributed from a raw array); pass weights="
            )
        part = self.part
        biggest = max(
            part.subdomains, key=lambda s: int(np.prod(s.shape))
        )
        kernel = BenchmarkKernel(
            name="cluster-kernel",
            weights=weights,
            problem_size=biggest.shape,
            iterations=steps,
            blocking=(32, 64),
        )
        method = LoRAStencilMethod(kernel)
        measure = tuple(min(s, 64) for s in biggest.shape)
        fp = method.footprint(measure)
        per_point = time_per_point(fp, method.traits(), self.machine)
        block_points = int(np.prod(biggest.shape))
        compute = per_point * block_points
        depth = self.plan.radius * block_steps
        ex = self.exchanger(depth)
        comm_bytes = max(
            ex.bytes_per_exchange(s.rank) for s in part.subdomains
        )
        # one deep exchange per round: a fixed per-message latency plus
        # the volume over the link, amortized over the round's steps —
        # the latency term is what temporal blocking actually cuts
        # (deep corner halos make the *volume* slightly superlinear).
        # The transfer formula is shared with the cluster observatory
        # so measured reports reconcile exactly with this model.
        from repro.telemetry.cluster import modeled_transfer_s

        comm = modeled_transfer_s(comm_bytes) / block_steps
        interior_points = int(
            np.prod([max(0, n - 2 * depth) for n in biggest.shape])
        )
        return ClusterTimings(
            num_devices=part.num_devices,
            compute_s=compute,
            comm_s=comm,
            steps=steps,
            overlap=overlap,
            interior_s=per_point * interior_points,
            boundary_s=per_point * (block_points - interior_points),
            points=int(np.prod(self.plan.global_shape)),
            block_steps=block_steps,
        )


class SimulatedCluster:
    """The 2D convenience wrapper over :class:`ClusterRuntime`.

    Keeps the original surface (``weights`` / ``part`` / ``halo`` /
    ``engines``, ``run`` returning the bare field, ``timings``) while
    executing everything through a :class:`DistributedPlan` — so
    ``run(..., simulate=True, backend=...)`` and the temporal/overlap
    modes are available here too.
    """

    def __init__(
        self,
        weights: StencilWeights,
        global_shape: tuple[int, int],
        mesh: tuple[int, int],
        boundary: str = "constant",
        machine: MachineSpec = A100,
    ) -> None:
        if weights.ndim != 2:
            raise ValueError(
                f"SimulatedCluster supports 2D stencils, got {weights.ndim}D"
            )
        self.weights = weights
        self.machine = machine
        self.plan = distribute(
            weights, global_shape, mesh, boundary=boundary
        )
        self.runtime = ClusterRuntime(self.plan, machine=machine)
        self.part: Partition = self.plan.part
        self.halo = self.runtime.halo
        # the plan cache collapses the mesh onto one compiled plan; the
        # per-rank engine views are shared read-only references
        self.engines = {
            sub.rank: self.plan.compiled.engine
            for sub in self.part.subdomains
        }

    def scatter(self, global_field: np.ndarray) -> dict[int, np.ndarray]:
        """Distribute a global field onto the device mesh."""
        return self.runtime.scatter(global_field)

    def gather(self, blocks: dict[int, np.ndarray]) -> np.ndarray:
        """Reassemble the global field."""
        return self.runtime.gather(blocks)

    def run(
        self, global_field: np.ndarray, steps: int, **kwargs
    ) -> np.ndarray:
        """Timestep the global problem; returns the final global field.

        ``**kwargs`` pass through to :meth:`ClusterRuntime.run`
        (``overlap=``, ``executor=``, ``simulate=``, ``block_steps=``,
        fault-tolerance arguments, ...).
        """
        return self.runtime.run(global_field, steps, **kwargs).field

    def timings(self, steps: int = 1, **kwargs) -> ClusterTimings:
        """Modelled per-step time (see :meth:`ClusterRuntime.timings`)."""
        return self.runtime.timings(steps, **kwargs)
