"""MMA-count models (Eq. 16 and the Section III-C analysis).

LoRAStencil, radius ``h``, per 8x8 output tile:

* Step 1 needs ``(K/4) * (W/8)`` MMAs and Step 2 ``W/4`` MMAs per rank-1
  matrix term, and PMA yields ``h`` matrix terms (the ``h+1``-th term is
  the scalar apex, computed on CUDA cores);
* total: ``h * ((K/4)*(W/8) + W/4)`` — 36 for ``h = 3``, matching
  Eq. 16's ``2h * ceil(h/2) * (2*ceil(h/4) + 1)`` per 64 points.

ConvStencil has no fragment reuse, so its MMA count equals its fragment
load count (Eq. 13).  The paper's headline ratio 36/26 ~ 1.38 at
``h = 3`` quantifies the compute LoRAStencil trades for its memory
savings.
"""

from __future__ import annotations

import math

from repro.analysis.memory_model import (
    convstencil_fragment_loads,
    convstencil_loads_per_tile,
    rdg_loads_per_tile,
)

__all__ = [
    "lorastencil_mma_per_tile",
    "lorastencil_mma_count",
    "convstencil_mma_per_tile",
    "convstencil_mma_count",
    "mma_ratio",
]


def lorastencil_mma_per_tile(h: int, matrix_terms: int | None = None) -> int:
    """MMAs per 8x8 output tile for a radius-``h`` PMA decomposition.

    ``matrix_terms`` defaults to ``h`` (full-rank radially symmetric
    weights); lower-rank kernels pass their actual term count.
    """
    if h < 1:
        raise ValueError(f"radius must be >= 1, got {h}")
    if matrix_terms is None:
        matrix_terms = h
    w = math.ceil((8 + 2 * h) / 8) * 8
    step1 = rdg_loads_per_tile(h)
    step2 = w // 4
    return matrix_terms * (step1 + step2)


def lorastencil_mma_count(a: int, b: int, h: int) -> int:
    """Eq. 16: total MMAs for an ``a x b`` sweep."""
    tiles = math.ceil(a / 8) * math.ceil(b / 8)
    return tiles * lorastencil_mma_per_tile(h)


def convstencil_mma_per_tile(h: int) -> int:
    """ConvStencil MMAs per 8 x (2h+2) tile: equal to its loads (Eq. 13)."""
    return convstencil_loads_per_tile(h)


def convstencil_mma_count(a: int, b: int, h: int) -> int:
    """Total ConvStencil MMAs for an ``a x b`` sweep."""
    return convstencil_fragment_loads(a, b, h)


def mma_ratio(h: int) -> float:
    """LoRAStencil / ConvStencil MMAs per point (36/26 ~ 1.38 at h=3)."""
    lora = lorastencil_mma_per_tile(h) / 64.0
    conv = convstencil_mma_per_tile(h) / (8.0 * (2 * h + 2))
    return lora / conv
