"""Occupancy comparison (the Section V-D argument).

ConvStencil's stencil2row matrices occupy more shared memory per thread
block than LoRAStencil's direct input tile, capping resident blocks per
SM and the latency hiding they provide.  This model measures both
methods' actual per-block shared footprints on the simulator
(``Device.peak_shared_bytes``) and converts them to occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.convstencil import ConvStencil2D
from repro.runtime import compile as compile_stencil
from repro.perf.machine import A100, MachineSpec
from repro.perf.occupancy import blocks_per_sm, occupancy_factor
from repro.stencil.weights import StencilWeights
from repro.tcu.device import Device

__all__ = ["OccupancyComparison", "compare_occupancy"]


@dataclass(frozen=True)
class OccupancyComparison:
    """Shared footprint and occupancy of both methods on one kernel."""

    lora_shared_bytes: int
    conv_shared_bytes: int
    lora_blocks_per_sm: int
    conv_blocks_per_sm: int
    lora_occupancy: float
    conv_occupancy: float

    @property
    def shared_ratio(self) -> float:
        """ConvStencil bytes over LoRAStencil bytes (>1 = Conv heavier)."""
        return self.conv_shared_bytes / max(1, self.lora_shared_bytes)


def compare_occupancy(
    weights: StencilWeights,
    grid: tuple[int, int] = (64, 64),
    machine: MachineSpec = A100,
    seed: int = 0,
) -> OccupancyComparison:
    """Measure per-block shared usage of both methods and model occupancy.

    ConvStencil allocates its *two* stencil2row matrices per band; the
    peak tracked by the device is the footprint of one of them, so its
    per-block total is twice the peak allocation.
    """
    if weights.ndim != 2:
        raise ValueError(f"occupancy comparison needs a 2D kernel, got "
                         f"{weights.ndim}D")
    rng = np.random.default_rng(seed)
    h = weights.radius
    x = rng.normal(size=tuple(s + 2 * h for s in grid))

    d_lora = Device()
    compile_stencil(weights).engine.apply_simulated(x, device=d_lora)
    # LoRAStencil covers a 32x64-output block per shared allocation
    block_points = 32 * 64
    lora_bytes = d_lora.peak_shared_bytes

    d_conv = Device()
    ConvStencil2D(weights.as_matrix()).apply_simulated(x, device=d_conv)
    # ConvStencil allocates two stencil2row matrices per (32 x 2h+2)-output
    # band; normalize to the same 2048-output coverage as LoRAStencil so
    # occupancy compares like for like
    band_points = 32 * min(2 * h + 2, 8)
    conv_bytes = round(
        2 * d_conv.peak_shared_bytes * block_points / band_points
    )

    return OccupancyComparison(
        lora_shared_bytes=lora_bytes,
        conv_shared_bytes=conv_bytes,
        lora_blocks_per_sm=blocks_per_sm(lora_bytes, machine),
        conv_blocks_per_sm=blocks_per_sm(conv_bytes, machine),
        lora_occupancy=occupancy_factor(lora_bytes, machine),
        conv_occupancy=occupancy_factor(conv_bytes, machine),
    )
