"""Shared-memory load models (Eq. 12-14).

For an ``a x b`` grid and kernel radius ``h``:

* RDG loads ``ab / 8`` fragments in total (Eq. 12): every 8x8 output
  tile loads its input window once — ``(K/4) * (W/8)`` fragments — and
  reuses it across all rank-1 terms;
* ConvStencil loads ``2 * ceil((2h+1)^2 / 4)`` fragments per
  ``8 x (2h+2)`` output tile with no reuse (Eq. 13);
* their ratio (Eq. 14) is ``ceil((2h+1)^2 / 4) / (h + 1)`` — 3.25x at
  ``h = 3``, 4.2x at ``h = 4`` — i.e. RDG eliminates 69.23% / 76.19% of
  ConvStencil's redundant accesses.
"""

from __future__ import annotations

import math

__all__ = [
    "rdg_fragment_loads",
    "rdg_loads_per_tile",
    "convstencil_fragment_loads",
    "convstencil_loads_per_tile",
    "memory_ratio",
    "redundancy_eliminated",
]


def rdg_loads_per_tile(h: int) -> int:
    """Input fragments per 8x8 output tile: ``(K/4) * (W/8)`` with the
    window dimensions 4-/8-aligned."""
    if h < 1:
        raise ValueError(f"radius must be >= 1, got {h}")
    k = math.ceil((8 + 2 * h) / 4) * 4
    w = math.ceil((8 + 2 * h) / 8) * 8
    return (k // 4) * (w // 8)


def rdg_fragment_loads(a: int, b: int, h: int) -> int:
    """Eq. 12: total fragments loaded by RDG for an ``a x b`` sweep.

    The paper states ``ab / 8``, which holds for the fragment-limited
    radii it evaluates (``8 + 2h <= 16``); the general form divides the
    per-tile loads by the 64 points each tile updates.
    """
    tiles = math.ceil(a / 8) * math.ceil(b / 8)
    return tiles * rdg_loads_per_tile(h)


def convstencil_loads_per_tile(h: int) -> int:
    """Eq. 13 numerator: ``2 * ceil((2h+1)^2 / 4)`` per 8 x (2h+2) tile."""
    if h < 1:
        raise ValueError(f"radius must be >= 1, got {h}")
    return 2 * math.ceil((2 * h + 1) ** 2 / 4)


def convstencil_fragment_loads(a: int, b: int, h: int) -> int:
    """Eq. 13: total fragments loaded by ConvStencil for an ``a x b`` sweep."""
    tiles_r = math.ceil(a / 8)
    tiles_c = math.ceil(b / (2 * h + 2))
    return tiles_r * tiles_c * convstencil_loads_per_tile(h)


def memory_ratio(h: int) -> float:
    """Eq. 14: ConvStencil / RDG shared-memory load volume."""
    return math.ceil((2 * h + 1) ** 2 / 4) / (h + 1)


def redundancy_eliminated(h: int) -> float:
    """Fraction of ConvStencil's loads RDG removes: ``1 - 1/ratio``."""
    return 1.0 - 1.0 / memory_ratio(h)
