"""Closed-form analytic models from the paper (Eq. 12-16, Section IV-A).

These formulas are the paper's own redundancy/compute analysis; the test
suite checks that the TCU simulator's *measured* counters agree with
them, closing the loop between model and implementation.
"""

from repro.analysis.memory_model import (
    convstencil_fragment_loads,
    convstencil_loads_per_tile,
    memory_ratio,
    rdg_fragment_loads,
    redundancy_eliminated,
)
from repro.analysis.occupancy_model import OccupancyComparison, compare_occupancy
from repro.analysis.compute_model import (
    convstencil_mma_count,
    lorastencil_mma_count,
    lorastencil_mma_per_tile,
    mma_ratio,
)

__all__ = [
    "rdg_fragment_loads",
    "convstencil_fragment_loads",
    "convstencil_loads_per_tile",
    "memory_ratio",
    "redundancy_eliminated",
    "lorastencil_mma_count",
    "lorastencil_mma_per_tile",
    "convstencil_mma_count",
    "mma_ratio",
    "OccupancyComparison",
    "compare_occupancy",
]
