"""repro — a full reproduction of *LoRAStencil: Low-Rank Adaptation of
Stencil Computation on Tensor Cores* (SC 2024).

Public API tour:

>>> import numpy as np
>>> from repro import get_kernel, LoRAStencil2D, reference_apply
>>> kernel = get_kernel("Box-2D49P")
>>> engine = LoRAStencil2D(kernel.weights.as_matrix())
>>> x = np.random.default_rng(0).normal(size=(70, 70))
>>> out = engine.apply(x)                       # functional fast path
>>> out_sim, events = engine.apply_simulated(x)  # warp-level TCU simulation
>>> bool(np.allclose(out, reference_apply(x, kernel.weights)))
True

Subpackages: :mod:`repro.stencil` (substrate), :mod:`repro.tcu`
(tensor-core simulator), :mod:`repro.core` (RDG/PMA/BVS engines),
:mod:`repro.baselines` (the Fig. 8 line-up), :mod:`repro.perf`
(A100 cost model), :mod:`repro.analysis` (Eq. 12-16 closed forms),
:mod:`repro.experiments` (figure/table drivers).
"""

from repro.stencil import (
    Grid,
    KERNELS,
    Shape,
    StencilPattern,
    StencilWeights,
    box_weights,
    compose_weights,
    get_kernel,
    is_radially_symmetric,
    list_kernels,
    radially_symmetric_weights,
    reference_apply,
    reference_iterate,
    star_weights,
)
from repro.core import (
    Decomposition,
    LoRAStencil1D,
    LoRAStencil2D,
    LoRAStencil3D,
    OptimizationConfig,
    Rank1Term,
    decompose,
    fuse_kernel,
    pyramidal_decompose,
    svd_decompose,
)
from repro.tcu import Device, EventCounters
from repro.perf import A100, gstencil_per_second
from repro.core.autotune import autotune_2d
from repro.parallel import SimulatedCluster, SimulatedCluster3D
from repro.precision import TCStencilFP16, precision_sweep
from repro.codegen import generate_cuda_kernel
from repro.validation import convergence_study, estimated_order

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # stencil substrate
    "Shape",
    "StencilPattern",
    "StencilWeights",
    "Grid",
    "KERNELS",
    "get_kernel",
    "list_kernels",
    "box_weights",
    "star_weights",
    "radially_symmetric_weights",
    "compose_weights",
    "is_radially_symmetric",
    "reference_apply",
    "reference_iterate",
    # core
    "Rank1Term",
    "Decomposition",
    "decompose",
    "pyramidal_decompose",
    "svd_decompose",
    "LoRAStencil1D",
    "LoRAStencil2D",
    "LoRAStencil3D",
    "OptimizationConfig",
    "fuse_kernel",
    # hardware + perf
    "Device",
    "EventCounters",
    "A100",
    "gstencil_per_second",
    # extensions
    "autotune_2d",
    "SimulatedCluster",
    "SimulatedCluster3D",
    "TCStencilFP16",
    "precision_sweep",
    "generate_cuda_kernel",
    "convergence_study",
    "estimated_order",
]
