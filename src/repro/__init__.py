"""repro — a full reproduction of *LoRAStencil: Low-Rank Adaptation of
Stencil Computation on Tensor Cores* (SC 2024).

Public API tour — compile once, execute many:

>>> import numpy as np
>>> import repro
>>> kernel = repro.get_kernel("Box-2D49P")
>>> stencil = repro.compile(kernel.weights)     # cached StencilPlan
>>> x = np.random.default_rng(0).normal(size=(64, 64))
>>> out = stencil.apply_grid(x)                 # pads internally
>>> padded = np.pad(x, stencil.radius)
>>> out_sim, events = stencil.apply_simulated(padded)  # TCU simulation
>>> bool(np.allclose(out_sim, repro.reference_apply(padded, kernel.weights)))
True

:func:`repro.compile` derives the PMA/SVD decomposition, banded gather
matrices, BVS permutation and block schedule once per distinct
``(weights, config, tile_shape, dtype)`` and memoizes the resulting
:class:`~repro.runtime.plan.StencilPlan` in a content-addressed
:class:`~repro.runtime.cache.PlanCache`.  The returned
:class:`~repro.runtime.facade.CompiledStencil` executes single grids,
vectorized batches (:meth:`apply_batch`) and sharded simulated sweeps
with merged event counters.

Subpackages: :mod:`repro.stencil` (substrate), :mod:`repro.tcu`
(tensor-core simulator), :mod:`repro.core` (RDG/PMA/BVS engines),
:mod:`repro.runtime` (plans, plan cache, batched/sharded execution),
:mod:`repro.baselines` (the Fig. 8 line-up), :mod:`repro.perf`
(A100 cost model), :mod:`repro.analysis` (Eq. 12-16 closed forms),
:mod:`repro.experiments` (figure/table drivers).

Direct engine construction (``LoRAStencil2D(...)``) still works but is
deprecated in favour of :func:`repro.compile`.
"""

from repro.errors import (
    BackendError,
    DecompositionError,
    KernelNotFoundError,
    LoweringError,
    PerfError,
    ReproError,
    ShapeError,
)
from repro.stencil import (
    Grid,
    KERNELS,
    Shape,
    StencilPattern,
    StencilWeights,
    box_weights,
    compose_weights,
    get_kernel,
    is_radially_symmetric,
    list_kernels,
    radially_symmetric_weights,
    reference_apply,
    reference_iterate,
    star_weights,
)
from repro.core import (
    Decomposition,
    LoRAStencil1D,
    LoRAStencil2D,
    LoRAStencil3D,
    OptimizationConfig,
    Rank1Term,
    fuse_kernel,
)
from repro.core.lowrank import decompose, pyramidal_decompose, svd_decompose
from repro.runtime import (
    CompiledStencil,
    PlanCache,
    Runtime,
    StencilPlan,
    compile,
)
from repro.tcu import Device, EventCounters
from repro.perf import A100, gstencil_per_second
from repro.core.autotune import autotune_2d
from repro.parallel import SimulatedCluster, SimulatedCluster3D
from repro.precision import TCStencilFP16, precision_sweep
from repro.codegen import generate_cuda_kernel
from repro.validation import convergence_study, estimated_order

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "KernelNotFoundError",
    "DecompositionError",
    "ShapeError",
    "LoweringError",
    "PerfError",
    "BackendError",
    # stencil substrate
    "Shape",
    "StencilPattern",
    "StencilWeights",
    "Grid",
    "KERNELS",
    "get_kernel",
    "list_kernels",
    "box_weights",
    "star_weights",
    "radially_symmetric_weights",
    "compose_weights",
    "is_radially_symmetric",
    "reference_apply",
    "reference_iterate",
    # core
    "Rank1Term",
    "Decomposition",
    "decompose",
    "pyramidal_decompose",
    "svd_decompose",
    "LoRAStencil1D",
    "LoRAStencil2D",
    "LoRAStencil3D",
    "OptimizationConfig",
    "fuse_kernel",
    # runtime
    "compile",
    "CompiledStencil",
    "StencilPlan",
    "PlanCache",
    "Runtime",
    # hardware + perf
    "Device",
    "EventCounters",
    "A100",
    "gstencil_per_second",
    # extensions
    "autotune_2d",
    "SimulatedCluster",
    "SimulatedCluster3D",
    "TCStencilFP16",
    "precision_sweep",
    "generate_cuda_kernel",
    "convergence_study",
    "estimated_order",
]
